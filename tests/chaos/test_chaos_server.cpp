// Chaos tests: the epoll daemon under injected syscall faults and
// hostile clients.
//
// The load-bearing properties: an Nth-call fault at any wrapped server
// site (read/write/accept/epoll_wait/eventfd/alloc) never crashes the
// daemon, never reorders replies, and every completed prediction stays
// bit-identical to serial predict; after disarming, the daemon serves a
// clean client perfectly. Idle and slow-loris connections are evicted
// within 2x the configured timeout (counted in connections_timed_out),
// a connection owed replies is never evicted, and a RELOAD whose mmap
// is failed keeps the old snapshot serving with `reloads` unchanged.
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/command_handler.hpp"
#include "service/service.hpp"
#include "support/synthetic_hashes.hpp"
#include "util/fault_inject.hpp"

namespace fhc::net {
namespace {

using Clock = std::chrono::steady_clock;

struct Fixture {
  core::FuzzyHashClassifier model;
  std::vector<core::FeatureHashes> queries;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    testsupport::SyntheticHashes data =
        testsupport::make_synthetic_hashes(testsupport::SyntheticHashesParams{});
    Fixture out;
    out.queries = std::move(data.queries);
    core::ClassifierConfig config;
    config.forest.n_estimators = 20;
    config.forest.seed = 11;
    config.confidence_threshold = 0.3;
    out.model.fit(data.train, data.labels, {"A", "B", "C", "D"}, config);
    return out;
  }();
  return fx;
}

core::FuzzyHashClassifier clone_model() {
  std::stringstream buffer;
  fixture().model.save(buffer);
  core::FuzzyHashClassifier copy;
  copy.load(buffer);
  return copy;
}

std::string fresh_socket_path() {
  static int counter = 0;
  return "/tmp/fhc_chaos_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

std::string classify_frame(const core::FeatureHashes& sample) {
  std::vector<std::string> digests;
  for (std::size_t i = 0; i < sample.channel_count(); ++i) {
    digests.push_back(sample.channel(i).to_string());
  }
  std::string frame;
  encode_classify_digests(frame, digests);
  return frame;
}

struct TestDaemon {
  service::ClassificationService svc;
  service::CommandHandler handler;
  SocketServer server;

  explicit TestDaemon(service::ServiceConfig service_config = {},
                      ServerConfig server_config = {})
      : svc(clone_model(), service_config),
        handler(svc),
        server(handler, [&] {
          if (server_config.unix_path.empty()) {
            server_config.unix_path = fresh_socket_path();
          }
          return server_config;
        }()) {
    server.start();
  }

  ~TestDaemon() {
    util::FaultInjector::instance().disarm();  // never leak into teardown
    server.stop();
    server.join();
  }

  Endpoint endpoint() const {
    Endpoint out;
    out.unix_path = server.unix_socket_path();
    return out;
  }
};

/// Every test leaves the process-wide injector disarmed.
struct Disarmer {
  ~Disarmer() { util::FaultInjector::instance().disarm(); }
};

/// With the injector disarmed, a fresh client must see every query
/// answered bit-identically to serial predict, in order — the recovery
/// invariant after any chaos run.
void verify_serial_identity(const TestDaemon& daemon) {
  const Fixture& fx = fixture();
  BlockingClient client;
  client.set_recv_timeout(5000);
  ASSERT_EQ(client.connect(daemon.endpoint(), /*retries=*/100), "");
  std::string wire;
  for (const core::FeatureHashes& query : fx.queries) {
    wire += classify_frame(query);
  }
  ASSERT_TRUE(client.send_bytes(wire));
  for (const core::FeatureHashes& query : fx.queries) {
    Response response;
    std::string error;
    ASSERT_TRUE(client.read_response(response, &error)) << error;
    ASSERT_EQ(response.op, Opcode::kPrediction);
    const core::Prediction expected = fixture().model.predict(query);
    EXPECT_EQ(response.label, expected.label);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(response.confidence),
              std::bit_cast<std::uint64_t>(expected.confidence));
  }
}

/// One chaos cell: arm `rule`, drive a retrying pipelined load, assert
/// the order invariant held and (when the rule is survivable with the
/// given retry budget) the load completed; then disarm and prove full
/// recovery.
void run_fault_cell(TestDaemon& daemon, util::FaultRule rule,
                    std::uint64_t seed, const char* what) {
  const Fixture& fx = fixture();
  util::FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back(rule);
  util::FaultInjector::instance().arm(std::move(plan));

  std::vector<std::string> frames;
  for (const core::FeatureHashes& query : fx.queries) {
    frames.push_back(classify_frame(query));
  }
  LoadOptions options;
  options.endpoint = daemon.endpoint();
  options.connections = 2;
  options.pipeline = 4;
  options.requests = 16;
  options.connect_retries = 200;
  options.retries = 10;
  options.backoff_ms = 2;
  options.recv_timeout_ms = 2000;
  const LoadResult result = run_load(options, frames);
  util::FaultInjector::instance().disarm();

  // Reply order is sacred: a reply the client was not owed means the
  // server answered out of order or duplicated work.
  EXPECT_EQ(result.failure.find("reply without a pending request"),
            std::string::npos)
      << what << ": " << result.failure;
  EXPECT_TRUE(result.ok()) << what << ": " << result.failure;
  EXPECT_EQ(result.errors, 0u) << what;

  verify_serial_identity(daemon);
}

TEST(ChaosServer, NthCallSweepOverEveryWrappedSite) {
  Disarmer guard;
  TestDaemon daemon;
  const util::FaultSite sites[] = {
      util::FaultSite::kRead,      util::FaultSite::kWrite,
      util::FaultSite::kAccept,    util::FaultSite::kEpollWait,
      util::FaultSite::kEventfd,   util::FaultSite::kAlloc,
  };
  for (const util::FaultSite site : sites) {
    for (const std::uint64_t nth : {1u, 2u, 5u}) {
      util::FaultRule rule;
      rule.site = site;
      rule.nth = nth;
      const std::string what = std::string(util::fault_site_name(site)) +
                               ":nth=" + std::to_string(nth);
      SCOPED_TRACE(what);
      run_fault_cell(daemon, rule, /*seed=*/nth * 7 + 1, what.c_str());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ChaosServer, ProbabilisticReadWriteStorm) {
  Disarmer guard;
  TestDaemon daemon;
  util::FaultPlan plan;
  plan.seed = 1234;
  for (const util::FaultSite site :
       {util::FaultSite::kRead, util::FaultSite::kWrite}) {
    util::FaultRule rule;
    rule.site = site;
    rule.probability = 0.1;
    rule.max_failures = 8;
    plan.rules.push_back(rule);
  }
  util::FaultInjector::instance().arm(std::move(plan));

  const Fixture& fx = fixture();
  std::vector<std::string> frames;
  for (const core::FeatureHashes& query : fx.queries) {
    frames.push_back(classify_frame(query));
  }
  LoadOptions options;
  options.endpoint = daemon.endpoint();
  options.connections = 3;
  options.pipeline = 4;
  options.requests = 24;
  options.connect_retries = 200;
  options.retries = 20;
  options.backoff_ms = 2;
  options.recv_timeout_ms = 2000;
  const LoadResult result = run_load(options, frames);
  util::FaultInjector::instance().disarm();

  EXPECT_EQ(result.failure.find("reply without a pending request"),
            std::string::npos)
      << result.failure;
  EXPECT_TRUE(result.ok()) << result.failure;
  verify_serial_identity(daemon);
}

TEST(ChaosServer, IdleConnectionEvictedWithinTwiceTimeout) {
  ServerConfig server_config;
  server_config.idle_timeout_ms = 150;
  TestDaemon daemon({}, server_config);

  BlockingClient client;
  client.set_recv_timeout(3000);
  ASSERT_EQ(client.connect(daemon.endpoint(), /*retries=*/100), "");
  const Clock::time_point start = Clock::now();

  // Say nothing. The server must hang up on its own.
  Response response;
  const BlockingClient::ReadStatus status = client.read_response_status(response);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  // Eviction sends a best-effort ERROR then closes; depending on timing
  // the client sees the frame or just the close — never a prediction.
  if (status == BlockingClient::ReadStatus::kOk) {
    EXPECT_EQ(response.op, Opcode::kError);
  } else {
    EXPECT_EQ(status, BlockingClient::ReadStatus::kTransport);
  }
  EXPECT_LE(elapsed.count(), 2 * server_config.idle_timeout_ms + 100)
      << "idle eviction took " << elapsed.count() << "ms";
  // The eviction is visible in the daemon's own accounting.
  for (int i = 0; i < 100 && daemon.svc.stats().connections_timed_out == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(daemon.svc.stats().connections_timed_out, 1u);
}

TEST(ChaosServer, SlowLorisPartialFrameEvictedWithinTwiceTimeout) {
  ServerConfig server_config;
  server_config.read_progress_timeout_ms = 150;
  TestDaemon daemon({}, server_config);

  BlockingClient client;
  client.set_recv_timeout(3000);
  ASSERT_EQ(client.connect(daemon.endpoint(), /*retries=*/100), "");

  // Drip the first three bytes of a real frame, then stall: classic
  // slow-loris. The read-progress clock starts at the first byte.
  const std::string frame = classify_frame(fixture().queries[0]);
  ASSERT_TRUE(client.send_bytes(frame.substr(0, 3)));
  const Clock::time_point start = Clock::now();

  Response response;
  const BlockingClient::ReadStatus status =
      client.read_response_status(response);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  if (status == BlockingClient::ReadStatus::kOk) {
    EXPECT_EQ(response.op, Opcode::kError);
  } else {
    EXPECT_EQ(status, BlockingClient::ReadStatus::kTransport);
  }
  EXPECT_LE(elapsed.count(), 2 * server_config.read_progress_timeout_ms + 100)
      << "slow-loris eviction took " << elapsed.count() << "ms";
  for (int i = 0; i < 100 && daemon.svc.stats().connections_timed_out == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(daemon.svc.stats().connections_timed_out, 1u);
}

TEST(ChaosServer, ConnectionOwedRepliesIsNeverEvicted) {
  // Park the dispatcher so the reply takes far longer than the idle
  // timeout: the connection is owed a reply the whole time and must not
  // be evicted.
  service::ServiceConfig service_config;
  service_config.max_batch = 64;
  service_config.max_delay = std::chrono::milliseconds(60000);
  service_config.cache_capacity = 0;
  ServerConfig server_config;
  server_config.idle_timeout_ms = 100;
  TestDaemon daemon(service_config, server_config);

  const Fixture& fx = fixture();
  BlockingClient client;
  client.set_recv_timeout(5000);
  ASSERT_EQ(client.connect(daemon.endpoint(), /*retries=*/100), "");
  ASSERT_TRUE(client.send_bytes(classify_frame(fx.queries[0])));

  // Well past several idle timeouts with the request still pending.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  daemon.svc.flush();

  Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  ASSERT_EQ(response.op, Opcode::kPrediction);
  const core::Prediction expected = fixture().model.predict(fx.queries[0]);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(response.confidence),
            std::bit_cast<std::uint64_t>(expected.confidence));
  EXPECT_EQ(daemon.svc.stats().connections_timed_out, 0u);
}

TEST(ChaosServer, ReloadWithMmapFaultKeepsOldSnapshotServing) {
  Disarmer guard;
  TestDaemon daemon;
  const Fixture& fx = fixture();

  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_chaos_reload_" + std::to_string(::getpid()) + ".fhcb");
  fx.model.save_binary_file(path.string());

  BlockingClient client;
  client.set_recv_timeout(5000);
  ASSERT_EQ(client.connect(daemon.endpoint(), /*retries=*/100), "");

  // Fail the model map's mmap on the reload path. The daemon must
  // answer ERROR, keep the old snapshot, and count no reload.
  util::FaultPlan plan;
  util::FaultRule rule;
  rule.site = util::FaultSite::kMmap;
  rule.nth = 1;
  plan.rules.push_back(rule);
  util::FaultInjector::instance().arm(std::move(plan));

  std::string wire;
  encode_reload(wire, path.string());
  wire += classify_frame(fx.queries[0]);  // pipelined behind the reload
  ASSERT_TRUE(client.send_bytes(wire));

  Response response;
  std::string error;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kError) << response.text;
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  ASSERT_EQ(response.op, Opcode::kPrediction);
  const core::Prediction expected = fixture().model.predict(fx.queries[0]);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(response.confidence),
            std::bit_cast<std::uint64_t>(expected.confidence));
  EXPECT_EQ(daemon.svc.stats().reloads, 0u);
  util::FaultInjector::instance().disarm();

  // Faults spent: the same RELOAD now succeeds.
  wire.clear();
  encode_reload(wire, path.string());
  ASSERT_TRUE(client.send_bytes(wire));
  ASSERT_TRUE(client.read_response(response, &error)) << error;
  EXPECT_EQ(response.op, Opcode::kOk) << response.text;
  EXPECT_EQ(daemon.svc.stats().reloads, 1u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fhc::net
