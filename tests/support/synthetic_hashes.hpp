// Shared synthetic FeatureHashes corpus for the service tests and the
// perf_service bench (kept in one place so the two cannot silently
// diverge from the pipeline mix they model).
//
// Per class, one random base buffer; training samples are xor-mutated
// variants of it and queries are distinct held-out variants — so
// same-class comparisons exercise the DP edit distance while cross-class
// pairs die at the 7-gram gate, the comparison mix fill_feature_row sees
// in the real pipeline, without the cost of synthesizing ELF images.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "ssdeep/fuzzy_hash.hpp"
#include "util/rng.hpp"

namespace fhc::testsupport {

inline std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xff);
  return out;
}

/// Three channels carved from one buffer (needs >= 40000 bytes).
inline core::FeatureHashes hashes_of(const std::vector<std::uint8_t>& file) {
  core::FeatureHashes hashes;
  hashes.file = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(file));
  hashes.strings =
      ssdeep::fuzzy_hash(std::span<const std::uint8_t>(file).subspan(0, 20000));
  hashes.symbols =
      ssdeep::fuzzy_hash(std::span<const std::uint8_t>(file).subspan(20000, 20000));
  return hashes;
}

struct SyntheticHashesParams {
  int classes = 4;
  int per_class = 12;
  int queries = 16;               // distinct held-out variants, round-robin by class
  std::uint64_t base_seed = 300;  // class c's base buffer uses base_seed + c
  std::uint64_t mutation_seed = 7;
  std::size_t file_size = 60000;
};

struct SyntheticHashes {
  std::vector<core::FeatureHashes> train;
  std::vector<int> labels;  // parallel to train
  std::vector<core::FeatureHashes> queries;
};

inline SyntheticHashes make_synthetic_hashes(const SyntheticHashesParams& params) {
  SyntheticHashes out;
  util::Rng rng(params.mutation_seed);
  std::vector<std::vector<std::uint8_t>> bases;
  for (int c = 0; c < params.classes; ++c) {
    bases.push_back(
        random_bytes(params.base_seed + static_cast<std::uint64_t>(c), params.file_size));
  }
  for (int c = 0; c < params.classes; ++c) {
    for (int v = 0; v < params.per_class; ++v) {
      auto file = bases[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < 3000; ++i) {
        file[(static_cast<std::size_t>(v) * 877 + i * 17) % file.size()] ^=
            static_cast<std::uint8_t>(rng() & 0xff);
      }
      out.train.push_back(hashes_of(file));
      out.labels.push_back(c);
    }
  }
  for (int q = 0; q < params.queries; ++q) {
    auto file = bases[static_cast<std::size_t>(q % params.classes)];
    for (std::size_t i = 0; i < 5000; ++i) {
      file[(static_cast<std::size_t>(q) * 991 + i * 11) % file.size()] ^= 0x4d;
    }
    out.queries.push_back(hashes_of(file));
  }
  return out;
}

}  // namespace fhc::testsupport
