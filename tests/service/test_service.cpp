// ClassificationService: batching, sharding, caching, reload, stats.
//
// The load-bearing property everywhere: the service is an *equivalent*
// front-end to FuzzyHashClassifier::predict — every layer (micro-batch,
// in-batch dedup, class-sharded rows, LRU cache) must return predictions
// bit-identical to the serial path.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include "service/command_handler.hpp"

#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "support/synthetic_hashes.hpp"

namespace fhc::service {
namespace {

struct Fixture {
  std::vector<core::FeatureHashes> train;
  std::vector<int> labels;
  core::FuzzyHashClassifier model;            // threshold 0.3
  core::FuzzyHashClassifier strict_model;     // threshold 1.01: all unknown
  std::vector<core::FeatureHashes> queries;   // 16 distinct held-out variants
};

// 4 classes x 12 samples of the shared synthetic-hash corpus (the real
// pipeline's comparison mix), in milliseconds of setup.
Fixture make_fixture() {
  testsupport::SyntheticHashes data =
      testsupport::make_synthetic_hashes(testsupport::SyntheticHashesParams{});
  Fixture fx;
  fx.train = std::move(data.train);
  fx.labels = std::move(data.labels);
  fx.queries = std::move(data.queries);

  core::ClassifierConfig config;
  config.forest.n_estimators = 20;
  config.forest.seed = 11;
  config.confidence_threshold = 0.3;
  fx.model.fit(fx.train, fx.labels, {"A", "B", "C", "D"}, config);

  config.confidence_threshold = 1.01;
  fx.strict_model.fit(fx.train, fx.labels, {"A", "B", "C", "D"}, config);
  return fx;
}

const Fixture& fixture() {
  static const Fixture fx = make_fixture();
  return fx;
}

/// Deep copy through the text serialization (FuzzyHashClassifier is
/// move-only); save/load is prediction-identical by the PR 2 property.
core::FuzzyHashClassifier clone(const core::FuzzyHashClassifier& model) {
  std::stringstream buffer;
  model.save(buffer);
  core::FuzzyHashClassifier copy;
  copy.load(buffer);
  return copy;
}

void expect_identical(const core::Prediction& a, const core::Prediction& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.confidence, b.confidence);
  ASSERT_EQ(a.proba.size(), b.proba.size());
  for (std::size_t c = 0; c < a.proba.size(); ++c) EXPECT_EQ(a.proba[c], b.proba[c]);
}

TEST(ClassificationService, ClassifyBatchBitIdenticalToSerialPredict) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  const std::vector<core::Prediction> batch = svc.classify_batch(fx.queries);
  ASSERT_EQ(batch.size(), fx.queries.size());
  for (std::size_t i = 0; i < fx.queries.size(); ++i) {
    expect_identical(batch[i], fx.model.predict(fx.queries[i]));
  }
}

TEST(ClassificationService, ShardCountsProduceIdenticalPredictions) {
  const Fixture& fx = fixture();
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    ServiceConfig config;
    config.shards = shards;  // 16 > n_classes exercises the clamp
    ClassificationService svc(clone(fx.model), config);
    const auto batch = svc.classify_batch(fx.queries);
    for (std::size_t i = 0; i < fx.queries.size(); ++i) {
      expect_identical(batch[i], fx.model.predict(fx.queries[i]));
    }
  }
}

TEST(ClassificationService, ConcurrentSubmitsAgreeWithSerialPredict) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::vector<std::future<core::Prediction>>> futures(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto& query =
            fx.queries[static_cast<std::size_t>(t * 5 + i) % fx.queries.size()];
        futures[static_cast<std::size_t>(t)].push_back(svc.submit(query));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const auto& query =
          fx.queries[static_cast<std::size_t>(t * 5 + i) % fx.queries.size()];
      expect_identical(futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)].get(),
                       fx.model.predict(query));
    }
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
}

TEST(ClassificationService, CacheHitsReturnIdenticalPredictions) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  const core::Prediction first = svc.submit(fx.queries[0]).get();
  const core::Prediction second = svc.submit(fx.queries[0]).get();
  expect_identical(second, first);
  expect_identical(second, fx.model.predict(fx.queries[0]));
  const ServiceStats stats = svc.stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_EQ(stats.scored, 1u);
}

TEST(ClassificationService, InBatchDedupScoresRepeatsOnce) {
  const Fixture& fx = fixture();
  ServiceConfig config;
  config.cache_capacity = 0;  // isolate dedup from the cache
  config.max_batch = 8;
  config.max_delay = std::chrono::milliseconds(10000);  // flush only on fill
  ClassificationService svc(clone(fx.model), config);
  const std::vector<core::FeatureHashes> repeats(8, fx.queries[1]);
  const auto batch = svc.classify_batch(repeats);
  for (const core::Prediction& pred : batch) {
    expect_identical(pred, fx.model.predict(fx.queries[1]));
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.scored, 1u);
  EXPECT_EQ(stats.dedup_hits, 7u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.largest_batch, 8u);
}

TEST(ClassificationService, ReloadSwapsWithoutDroppingInFlight) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  // Keep a stream of requests in flight across the swap.
  std::vector<std::future<core::Prediction>> futures;
  for (int round = 0; round < 4; ++round) {
    for (const core::FeatureHashes& query : fx.queries) {
      futures.push_back(svc.submit(query));
    }
    if (round == 1) svc.reload(clone(fx.strict_model));
  }
  // Every future resolves; none is dropped or broken by the swap. Each
  // result is bit-identical to one of the two models' serial predictions
  // (which model scored it depends on flush timing).
  std::size_t resolved = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const core::Prediction pred = futures[i].get();
    ++resolved;
    const auto& query = fx.queries[i % fx.queries.size()];
    const core::Prediction old_pred = fx.model.predict(query);
    const core::Prediction new_pred = fx.strict_model.predict(query);
    EXPECT_TRUE(pred.label == old_pred.label || pred.label == new_pred.label);
  }
  EXPECT_EQ(resolved, futures.size());
  EXPECT_EQ(svc.stats().reloads, 1u);
  // After the swap the strict model (threshold 1.01) answers everything
  // unknown — including samples the cache answered pre-swap, proving the
  // cache was invalidated.
  for (const core::FeatureHashes& query : fx.queries) {
    EXPECT_EQ(svc.submit(query).get().label, ml::kUnknownLabel);
  }
}

TEST(ClassificationService, ReloadV2AttachedModelSurvivesFileReplacement) {
  // The daemon's RELOAD path with the v2 container: both generations are
  // mmap'd + attached zero-copy, and the model file is atomically
  // REPLACED on disk between them. In-flight batches submitted against
  // the old generation must still resolve after the swap — the keepalive
  // chain (snapshot -> classifier -> TrainIndex/forest -> ModelMap) pins
  // the old mapping even though its directory entry is gone.
  const Fixture& fx = fixture();
  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_service_v2_" + std::to_string(::getpid()) + ".fhcb");
  fx.model.save_binary_file(path.string());
  auto first = core::FuzzyHashClassifier::load_file(path.string());
  ASSERT_TRUE(first.index().attached());
  ClassificationService svc(std::move(first));

  std::vector<std::future<core::Prediction>> futures;
  for (int round = 0; round < 4; ++round) {
    for (const core::FeatureHashes& query : fx.queries) {
      futures.push_back(svc.submit(query));
    }
    if (round == 1) {
      // Atomic rewrite of the SAME file the live model is mapped from,
      // then reload from it.
      fx.strict_model.save_binary_file(path.string());
      auto second = core::FuzzyHashClassifier::load_file(path.string());
      ASSERT_TRUE(second.index().attached());
      svc.reload(std::move(second));
      std::filesystem::remove(path);  // mappings outlive the name
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const core::Prediction pred = futures[i].get();
    const auto& query = fx.queries[i % fx.queries.size()];
    const core::Prediction old_pred = fx.model.predict(query);
    const core::Prediction new_pred = fx.strict_model.predict(query);
    EXPECT_TRUE(pred.label == old_pred.label || pred.label == new_pred.label);
  }
  EXPECT_EQ(svc.stats().reloads, 1u);
  // Post-swap the strict attached model answers everything unknown, and
  // its predictions are bit-identical to the fitted strict model's.
  for (const core::FeatureHashes& query : fx.queries) {
    const core::Prediction pred = svc.submit(query).get();
    EXPECT_EQ(pred.label, ml::kUnknownLabel);
    expect_identical(pred, fx.strict_model.predict(query));
  }
}

TEST(ClassificationService, StatsCountersAreConsistent) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  for (int round = 0; round < 3; ++round) svc.classify_batch(fx.queries);
  const ServiceStats stats = svc.stats();
  const auto total = static_cast<std::uint64_t>(3 * fx.queries.size());
  EXPECT_EQ(stats.requests, total);
  EXPECT_EQ(stats.completed, total);
  // Every request is answered exactly one way.
  EXPECT_EQ(stats.scored + stats.cache_hits + stats.dedup_hits, total);
  EXPECT_GE(stats.cache_hits, static_cast<std::uint64_t>(2 * fx.queries.size()));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.largest_batch, svc.config().max_batch);
  EXPECT_GE(stats.cache_hit_rate(), 0.0);
  EXPECT_LE(stats.cache_hit_rate(), 1.0);
  EXPECT_LE(stats.p50_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_EQ(stats.reloads, 0u);
}

TEST(ClassificationService, GateCountersShowTheIndexWorking) {
  const Fixture& fx = fixture();
  ServiceConfig config;
  config.cache_capacity = 0;  // force every request through scoring
  ClassificationService svc(clone(fx.model), config);
  svc.classify_batch(fx.queries);
  const ServiceStats after_first = svc.stats();

  // Scoring ran, and the candidate index pruned cross-class digests (the
  // synthetic corpus's classes share no 7-grams across classes).
  EXPECT_GT(after_first.candidates_scored, 0u);
  EXPECT_GT(after_first.index_skipped, 0u);
  EXPECT_GE(after_first.index_skip_rate(), 0.0);
  EXPECT_LE(after_first.index_skip_rate(), 1.0);

  // Class slices partition each row, so the service totals must equal
  // one full-width indexed fill per scored query.
  core::RowFillStats expected;
  const core::TrainIndex& index = svc.model()->index();
  const auto metric = svc.model()->config().metric;
  std::vector<float> row(svc.model()->row_width());
  for (const core::FeatureHashes& query : fx.queries) {
    core::fill_feature_row(index, query, metric, -1, row,
                           svc.model()->config().channels, &expected);
  }
  EXPECT_EQ(after_first.candidates_scored, expected.candidates_scored);
  EXPECT_EQ(after_first.index_skipped, expected.index_skipped);

  // Counters accumulate across batches.
  svc.classify_batch(fx.queries);
  const ServiceStats after_second = svc.stats();
  EXPECT_EQ(after_second.candidates_scored, 2 * after_first.candidates_scored);
  EXPECT_EQ(after_second.index_skipped, 2 * after_first.index_skipped);
}

TEST(ClassificationService, DestructorDrainsPendingRequests) {
  const Fixture& fx = fixture();
  std::vector<std::future<core::Prediction>> futures;
  {
    ServiceConfig config;
    config.max_batch = 64;                                // bigger than the stream
    config.max_delay = std::chrono::milliseconds(10000);  // only shutdown flushes
    config.cache_capacity = 0;
    ClassificationService svc(clone(fx.model), config);
    for (const core::FeatureHashes& query : fx.queries) {
      futures.push_back(svc.submit(query));
    }
  }  // destructor must drain, not drop
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_identical(futures[i].get(), fx.model.predict(fx.queries[i]));
  }
}

TEST(ClassificationService, RejectsUnfittedModels) {
  EXPECT_THROW(ClassificationService(core::FuzzyHashClassifier{}),
               std::invalid_argument);
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  EXPECT_THROW(svc.reload(core::FuzzyHashClassifier{}), std::invalid_argument);
  // The failed reload left the original model active.
  expect_identical(svc.submit(fx.queries[0]).get(), fx.model.predict(fx.queries[0]));
  EXPECT_EQ(svc.stats().reloads, 0u);
}

TEST(ClassificationService, TrySubmitBoundsQueueAndCountsRejections) {
  const Fixture& fx = fixture();
  ServiceConfig config;
  config.max_queue = 2;
  config.max_batch = 64;
  config.max_delay = std::chrono::milliseconds(10000);  // park the batch
  config.cache_capacity = 0;
  ClassificationService svc(clone(fx.model), config);

  // The dispatcher is waiting out max_delay, so submissions accumulate:
  // exactly max_queue are admitted, the rest are refused and counted.
  std::vector<std::future<core::Prediction>> admitted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    std::future<core::Prediction> future;
    if (svc.try_submit(fx.queries[i], future)) {
      admitted.push_back(std::move(future));
    } else {
      ++rejected;
      EXPECT_FALSE(future.valid());  // rejection hands back nothing
    }
  }
  EXPECT_EQ(admitted.size(), 2u);
  EXPECT_EQ(rejected, 6u);

  const ServiceStats held = svc.stats();
  EXPECT_EQ(held.queue_depth, 2u);  // provably bounded by max_queue
  EXPECT_EQ(held.requests_rejected, 6u);
  // Rejected requests are never counted as submitted, so the
  // completed == requests invariant survives admission control.
  EXPECT_EQ(held.requests, 2u);

  // flush() releases the parked batch; admitted futures resolve
  // bit-identically to the serial path and the queue empties.
  svc.flush();
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    expect_identical(admitted[i].get(), fx.model.predict(fx.queries[i]));
  }
  const ServiceStats drained = svc.stats();
  EXPECT_EQ(drained.completed, drained.requests);
  EXPECT_EQ(drained.queue_depth, 0u);

  // With the queue empty, try_submit admits again.
  std::future<core::Prediction> future;
  EXPECT_TRUE(svc.try_submit(fx.queries[0], future));
  svc.flush();
  expect_identical(future.get(), fx.model.predict(fx.queries[0]));
}

TEST(ClassificationService, TrySubmitAdmitsCacheHitsPastFullQueue) {
  const Fixture& fx = fixture();
  ServiceConfig config;
  config.max_queue = 1;
  config.max_batch = 64;
  config.max_delay = std::chrono::milliseconds(10000);
  ClassificationService svc(clone(fx.model), config);

  // Score and cache q0 first.
  std::future<core::Prediction> warm;
  ASSERT_TRUE(svc.try_submit(fx.queries[0], warm));
  svc.flush();
  expect_identical(warm.get(), fx.model.predict(fx.queries[0]));

  // Fill the queue, then submit the cached sample: a hit never occupies
  // the queue, so it is admitted even at the bound.
  std::future<core::Prediction> fills;
  ASSERT_TRUE(svc.try_submit(fx.queries[1], fills));
  std::future<core::Prediction> refused;
  EXPECT_FALSE(svc.try_submit(fx.queries[2], refused));
  std::future<core::Prediction> hit;
  EXPECT_TRUE(svc.try_submit(fx.queries[0], hit));
  expect_identical(hit.get(), fx.model.predict(fx.queries[0]));

  svc.flush();
  expect_identical(fills.get(), fx.model.predict(fx.queries[1]));
}

TEST(ClassificationService, FlushDispatchesBacklogLargerThanMaxBatch) {
  const Fixture& fx = fixture();
  ServiceConfig config;
  config.max_batch = 4;
  config.max_delay = std::chrono::milliseconds(10000);
  config.cache_capacity = 0;
  ClassificationService svc(clone(fx.model), config);

  // 12 pending > max_batch: one flush() must drain the whole backlog
  // (the flush request is sticky until the queue empties) — graceful
  // daemon shutdown depends on this.
  std::vector<std::future<core::Prediction>> futures;
  for (std::size_t i = 0; i < 12; ++i) futures.push_back(svc.submit(fx.queries[i]));
  svc.flush();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_identical(futures[i].get(), fx.model.predict(fx.queries[i]));
  }
  const ServiceStats stats = svc.stats();
  EXPECT_GE(stats.batches, 3u);  // 12 across batches of <= 4
  EXPECT_LE(stats.largest_batch, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ClassificationService, ConnectionCountersTrackTheSocketFrontEnd) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  svc.record_connection_opened();
  svc.record_connection_opened();
  svc.record_connection_opened();
  svc.record_connection_closed();
  svc.record_connection_rejected();
  svc.record_connection_rejected();
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.connections_opened, 3u);
  EXPECT_EQ(stats.connections_active, 2u);
  EXPECT_EQ(stats.connections_rejected, 2u);
  // Spurious closes (a close racing shutdown) never underflow.
  svc.record_connection_closed();
  svc.record_connection_closed();
  svc.record_connection_closed();
  EXPECT_EQ(svc.stats().connections_active, 0u);
}

TEST(ClassificationService, UnknownFlaggedCountsRejectionsIncludingCacheHits) {
  const Fixture& fx = fixture();
  // strict_model (threshold 1.01) rejects everything; the counter must
  // see every completed request, whether it was scored or answered by
  // the cache.
  ClassificationService strict(clone(fx.strict_model));
  const auto first = strict.classify_batch(fx.queries);
  for (const core::Prediction& pred : first) {
    EXPECT_TRUE(pred.is_unknown);
    EXPECT_EQ(pred.label, ml::kUnknownLabel);
  }
  EXPECT_EQ(strict.stats().unknown_flagged, fx.queries.size());
  strict.classify_batch(fx.queries);  // all cache hits
  const ServiceStats stats = strict.stats();
  EXPECT_GE(stats.cache_hits, fx.queries.size());
  EXPECT_EQ(stats.unknown_flagged, 2 * fx.queries.size());

  // A permissive model never bumps the counter.
  ClassificationService relaxed(clone(fx.model));
  std::size_t expected = 0;
  for (const core::Prediction& pred : relaxed.classify_batch(fx.queries)) {
    if (pred.is_unknown) ++expected;
  }
  EXPECT_EQ(relaxed.stats().unknown_flagged, expected);
}

TEST(ClassificationService, UnknownFlagBitIdenticalToSerialPredict) {
  // The service's is_unknown must be the serial path's decision exactly —
  // the socket front-end forwards this bit verbatim, so any divergence
  // here is a wire-visible lie.
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.strict_model));
  const auto batch = svc.classify_batch(fx.queries);
  for (std::size_t i = 0; i < fx.queries.size(); ++i) {
    const core::Prediction serial = fx.strict_model.predict(fx.queries[i]);
    EXPECT_EQ(batch[i].is_unknown, serial.is_unknown) << "query " << i;
    expect_identical(batch[i], serial);
  }
}

TEST(CommandHandler, StatsLineCarriesAdmissionCounters) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  CommandHandler handler(svc);
  svc.record_connection_opened();
  const std::string line = handler.stats_line();
  EXPECT_NE(line.find("connections_opened=1"), std::string::npos);
  EXPECT_NE(line.find("connections_active=1"), std::string::npos);
  EXPECT_NE(line.find("connections_rejected=0"), std::string::npos);
  EXPECT_NE(line.find("requests_rejected=0"), std::string::npos);
  EXPECT_NE(line.find("queue_depth=0"), std::string::npos);
  EXPECT_NE(line.find("requests="), std::string::npos);
  EXPECT_NE(line.find("unknown_flagged=0"), std::string::npos);
  EXPECT_NE(line.find("p99_ms="), std::string::npos);
}

TEST(CommandHandler, HandleLineSpeaksTheStdioProtocol) {
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  CommandHandler handler(svc);

  std::ostringstream out;
  EXPECT_TRUE(handler.handle_line("STATS", out));
  EXPECT_NE(out.str().find("requests=0"), std::string::npos);

  out.str("");
  EXPECT_TRUE(handler.handle_line("CLASSIFY /nonexistent/binary", out));
  EXPECT_EQ(out.str().rfind("ERR ", 0), 0u);

  out.str("");
  EXPECT_TRUE(handler.handle_line("CLASSIFY", out));
  EXPECT_NE(out.str().find("ERR CLASSIFY needs at least one path"),
            std::string::npos);

  out.str("");
  EXPECT_TRUE(handler.handle_line("RELOAD /nonexistent/model", out));
  EXPECT_EQ(out.str().rfind("ERR ", 0), 0u);
  EXPECT_EQ(svc.stats().reloads, 0u);

  out.str("");
  EXPECT_TRUE(handler.handle_line("BOGUS", out));
  EXPECT_NE(out.str().find("ERR unknown command: BOGUS"), std::string::npos);

  out.str("");
  EXPECT_TRUE(handler.handle_line("", out));  // blank lines are skipped
  EXPECT_TRUE(out.str().empty());

  out.str("");
  EXPECT_FALSE(handler.handle_line("QUIT", out));  // false = exit
  EXPECT_NE(out.str().find("OK bye"), std::string::npos);
}

TEST(CommandHandler, ReloadWithDamagedModelKeepsOldModelServing) {
  // Verify-before-swap: a RELOAD pointing at a bit-flipped model file
  // must fail the checksum pass, leave the old snapshot live, and count
  // no reload.
  const Fixture& fx = fixture();
  ClassificationService svc(clone(fx.model));
  CommandHandler handler(svc);

  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_service_damaged_" + std::to_string(::getpid()) +
                     ".fhcb");
  fx.strict_model.save_binary_file(path.string());
  // Flip one byte in the middle of the payload (past the header/table,
  // inside some section's bytes).
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    const auto size = std::filesystem::file_size(path);
    ASSERT_GT(size, 128u);
    file.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }

  const CommandHandler::ReloadResult result = handler.reload(path.string());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.message.empty());
  EXPECT_EQ(svc.stats().reloads, 0u);
  // The old model still answers, bit-identically to its serial path —
  // NOT the strict model's all-unknown behaviour.
  for (const core::FeatureHashes& query : fx.queries) {
    expect_identical(svc.submit(query).get(), fx.model.predict(query));
  }

  // Repair the file: the same RELOAD now succeeds and swaps.
  fx.strict_model.save_binary_file(path.string());
  const CommandHandler::ReloadResult repaired = handler.reload(path.string());
  EXPECT_TRUE(repaired.ok) << repaired.message;
  EXPECT_EQ(svc.stats().reloads, 1u);
  EXPECT_TRUE(svc.submit(fx.queries[0]).get().is_unknown);
  std::filesystem::remove(path);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedPerShard) {
  core::Prediction value;
  value.label = 1;
  value.confidence = 0.75;
  ShardedLruCache cache(/*capacity=*/2, /*shards=*/1);
  cache.put("a", value);
  cache.put("b", value);
  ASSERT_TRUE(cache.get("a").has_value());  // refresh "a"; "b" is now LRU
  cache.put("c", value);                    // evicts "b"
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("a").has_value());
}

TEST(ShardedLruCache, ZeroCapacityDisables) {
  core::Prediction value;
  ShardedLruCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put("a", value);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ServiceSampleKey, DistinguishesChannels) {
  const Fixture& fx = fixture();
  EXPECT_EQ(sample_key(fx.queries[0]), sample_key(fx.queries[0]));
  EXPECT_NE(sample_key(fx.queries[0]), sample_key(fx.queries[1]));
  // Swapping channel contents must change the key: the key is positional.
  core::FeatureHashes swapped = fx.queries[0];
  std::swap(swapped.strings, swapped.symbols);
  EXPECT_NE(sample_key(swapped), sample_key(fx.queries[0]));
}

}  // namespace
}  // namespace fhc::service
