#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fhc::util {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table({"Name", "Count"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // 4 lines: header, rule, 2 rows (trailing newline).
  int lines = 0;
  for (const char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);
}

TEST(TextTable, RightAlignmentPadsLeft) {
  TextTable table({"N", "Value"}, {Align::Left, Align::Right});
  table.add_row({"x", "7"});
  const std::string out = table.render();
  // "Value" is 5 wide; "7" must be right-aligned under it.
  EXPECT_NE(out.find("    7"), std::string::npos);
}

TEST(TextTable, ColumnsWidenToLongestCell) {
  TextTable table({"A"});
  table.add_row({"short"});
  table.add_row({"a-much-longer-cell"});
  const std::string out = table.render();
  // The rule must span the longest cell.
  EXPECT_NE(out.find(std::string(18, '-')), std::string::npos);
}

TEST(TextTable, RuleBeforeRow) {
  TextTable table({"A"});
  table.add_row({"x"});
  table.add_rule();
  table.add_row({"avg"});
  const std::string out = table.render();
  // Two rules total: one under the header, one before "avg".
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("---", pos)) != std::string::npos) {
    ++rules;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeaderOrBadAlignments) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  EXPECT_THROW(TextTable({"A", "B"}, {Align::Left}), std::invalid_argument);
}

TEST(TextTable, RowCountTracksRows) {
  TextTable table({"A"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace fhc::util
