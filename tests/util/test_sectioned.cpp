// The sectioned container is the envelope every v2 model crosses a
// machine boundary in; a malformed file must be a clean error at attach
// or verify time, never UB. The negative tests here are fuzz-style:
// truncate at many depths and flip bytes everywhere, asserting the view
// either refuses to attach or fails verification.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "util/sectioned.hpp"

namespace fhc::util {
namespace {

constexpr std::string_view kMagic = "TESTSEC1";

std::span<const std::byte> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// An 8-byte-aligned copy of a container image (string data is not
/// guaranteed aligned; the vector's heap block is).
std::vector<std::byte> aligned(const std::string& image) {
  std::vector<std::byte> out(image.size());
  if (!image.empty()) std::memcpy(out.data(), image.data(), image.size());
  return out;
}

std::string write_container(const std::vector<std::pair<std::string, std::string>>&
                                sections) {
  SectionedWriter writer(kMagic);
  for (const auto& [tag, payload] : sections) {
    writer.add_copy(tag, bytes_of(payload));
  }
  std::ostringstream out(std::ios::binary);
  writer.write_to(out);
  return out.str();
}

TEST(Sectioned, RoundTripsPayloadsByTag) {
  const std::string image = write_container(
      {{"alpha", "first payload"}, {"beta", std::string(1000, 'b')}, {"g", ""}});
  const auto buffer = aligned(image);
  const SectionedView view = SectionedView::attach(buffer, kMagic);
  ASSERT_EQ(view.entries().size(), 3u);
  EXPECT_NO_THROW(view.verify_checksums());

  const auto alpha = view.section("alpha");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(alpha.data()), alpha.size()),
            "first payload");
  EXPECT_EQ(view.section("beta").size(), 1000u);
  EXPECT_EQ(view.section("g").size(), 0u);

  std::span<const std::byte> out;
  EXPECT_TRUE(view.find("alpha", out));
  EXPECT_FALSE(view.find("missing", out));
  EXPECT_THROW(view.section("missing"), std::runtime_error);
}

TEST(Sectioned, SectionsAre64ByteAligned) {
  const std::string image = write_container(
      {{"a", "x"}, {"b", std::string(63, 'y')}, {"c", std::string(65, 'z')}});
  const auto buffer = aligned(image);
  const SectionedView view = SectionedView::attach(buffer, kMagic);
  for (const SectionEntry& entry : view.entries()) {
    EXPECT_EQ(entry.offset % 64, 0u) << entry.tag_view();
  }
  // Table order is offset order; payloads do not overlap.
  std::uint64_t prev_end = 0;
  for (const SectionEntry& entry : view.entries()) {
    EXPECT_GE(entry.offset, prev_end);
    prev_end = entry.offset + entry.size;
  }
  EXPECT_EQ(image.size(), prev_end);
}

TEST(Sectioned, WriteIsDeterministic) {
  const std::vector<std::pair<std::string, std::string>> sections = {
      {"one", "payload one"}, {"two", std::string(200, 'q')}};
  EXPECT_EQ(write_container(sections), write_container(sections));
}

TEST(Sectioned, TotalSizeMatchesWrittenBytes) {
  SectionedWriter writer(kMagic);
  const std::string a(77, 'a');
  const std::string b(1, 'b');
  writer.add("a", bytes_of(a));
  writer.add("b", bytes_of(b));
  std::ostringstream out(std::ios::binary);
  writer.write_to(out);
  EXPECT_EQ(out.str().size(), writer.total_size());
}

TEST(Sectioned, RejectsDuplicateAndBadTags) {
  SectionedWriter writer(kMagic);
  const std::string payload = "p";
  writer.add("tag", bytes_of(payload));
  EXPECT_THROW(writer.add("tag", bytes_of(payload)), std::invalid_argument);
  EXPECT_THROW(writer.add("", bytes_of(payload)), std::invalid_argument);
  EXPECT_THROW(writer.add("ninechars", bytes_of(payload)), std::invalid_argument);
  EXPECT_THROW(SectionedWriter("short"), std::invalid_argument);
}

TEST(Sectioned, RejectsWrongMagic) {
  const std::string image = write_container({{"a", "x"}});
  const auto buffer = aligned(image);
  EXPECT_THROW(SectionedView::attach(buffer, "OTHERMAG"), std::runtime_error);
}

TEST(Sectioned, TruncationAtEveryDepthIsACleanError) {
  const std::string image = write_container(
      {{"alpha", std::string(300, 'a')}, {"beta", std::string(100, 'b')}});
  // Every prefix must either refuse to attach or fail verify_checksums —
  // bounds are validated before any payload access, so none may crash.
  for (std::size_t len = 0; len < image.size(); len += 7) {
    const auto buffer = aligned(image.substr(0, len));
    bool rejected = false;
    try {
      const SectionedView view = SectionedView::attach(buffer, kMagic);
      view.verify_checksums();
    } catch (const std::runtime_error&) {
      rejected = true;
    }
    EXPECT_TRUE(rejected) << "prefix of " << len << " bytes slipped through";
  }
}

TEST(Sectioned, EveryByteFlipIsDetected) {
  const std::string image =
      write_container({{"alpha", "sensitive bits"}, {"beta", std::string(90, 'b')}});
  const auto good_buffer = aligned(image);
  const SectionedView good = SectionedView::attach(good_buffer, kMagic);
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::string corrupt = image;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    const auto buffer = aligned(corrupt);
    bool rejected = false;
    try {
      const SectionedView view = SectionedView::attach(buffer, kMagic);
      view.verify_checksums();
    } catch (const std::runtime_error&) {
      rejected = true;
    }
    // Padding bytes are the only ones outside magic/table/payloads, and
    // flipping those is harmless by design — everything else must trip.
    bool in_padding = true;
    if (pos < 24 + good.entries().size() * sizeof(SectionEntry)) in_padding = false;
    for (const SectionEntry& entry : good.entries()) {
      if (pos >= entry.offset && pos < entry.offset + entry.size) in_padding = false;
    }
    if (!in_padding) {
      EXPECT_TRUE(rejected) << "flip at byte " << pos << " slipped through";
    }
  }
}

TEST(Sectioned, RejectsImplausibleSectionCount) {
  std::string image = write_container({{"a", "x"}});
  std::uint32_t huge = 1u << 30;
  std::memcpy(image.data() + 8, &huge, sizeof huge);
  const auto buffer = aligned(image);
  EXPECT_THROW(SectionedView::attach(buffer, kMagic), std::runtime_error);
}

TEST(Sectioned, SectionAsChecksShapeAndAlignment) {
  const std::string payload(24, 'z');  // 3 x u64
  const std::string odd(13, 'z');
  const std::string image = write_container({{"u64s", payload}, {"odd", odd}});
  const auto buffer = aligned(image);
  const SectionedView view = SectionedView::attach(buffer, kMagic);
  EXPECT_EQ(section_as<std::uint64_t>(view, "u64s").size(), 3u);
  EXPECT_THROW(section_as<std::uint64_t>(view, "odd"), std::runtime_error);
}

TEST(Sectioned, WriteFileReplacesAtomicallyAndLeavesNoTemp) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("fhc_sectioned_" + std::to_string(::getpid()) + ".bin");
  const std::string payload_a(100, 'a');
  SectionedWriter first(kMagic);
  first.add("data", bytes_of(payload_a));
  first.write_file(path.string());

  const std::string payload_b(500, 'b');
  SectionedWriter second(kMagic);
  second.add("data", bytes_of(payload_b));
  second.write_file(path.string());

  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::ifstream in(path, std::ios::binary);
  std::stringstream contents;
  contents << in.rdbuf();
  const auto buffer = aligned(contents.str());
  const SectionedView view = SectionedView::attach(buffer, kMagic);
  EXPECT_EQ(view.section("data").size(), 500u);
  EXPECT_NO_THROW(view.verify_checksums());
  std::filesystem::remove(path);
}

TEST(Sectioned, ChecksumProperties) {
  // The lane checksum must be deterministic, length-sensitive (a
  // zero-padded tail cannot collide with explicit trailing zeros), and
  // sensitive to any single-bit flip in any lane position.
  const std::string abc = "abc";
  EXPECT_EQ(checksum64(bytes_of(abc)), checksum64(bytes_of(abc)));
  const std::string abc0 = std::string("abc") + '\0';
  EXPECT_NE(checksum64(bytes_of(abc)), checksum64(bytes_of(abc0)));
  const std::string empty;
  EXPECT_NE(checksum64(bytes_of(empty)), checksum64(bytes_of(abc)));

  const std::string base(37, 'q');  // straddles full and tail lanes
  const std::uint64_t reference = checksum64(bytes_of(base));
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = base;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
      EXPECT_NE(checksum64(bytes_of(flipped)), reference)
          << "bit " << bit << " of byte " << pos;
    }
  }
}

}  // namespace
}  // namespace fhc::util
