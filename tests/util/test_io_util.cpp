// Filesystem helpers: roundtrips, directory creation, error paths.
#include "util/io_util.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include <unistd.h>

namespace fhc::util {
namespace {

class IoUtilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fhc_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(IoUtilTest, WriteReadRoundTripBinary) {
  std::vector<std::uint8_t> data{0x00, 0xff, 0x7f, 0x80, 0x0a, 0x00};
  write_file(dir_ / "blob.bin", std::span<const std::uint8_t>(data));
  EXPECT_EQ(read_file(dir_ / "blob.bin"), data);
}

TEST_F(IoUtilTest, WriteReadRoundTripText) {
  write_file(dir_ / "note.txt", std::string("hello\nworld\n"));
  const auto bytes = read_file(dir_ / "note.txt");
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "hello\nworld\n");
}

TEST_F(IoUtilTest, WriteCreatesParentDirectories) {
  const auto nested = dir_ / "a" / "b" / "c" / "deep.bin";
  write_file(nested, std::string("x"));
  EXPECT_TRUE(std::filesystem::exists(nested));
}

TEST_F(IoUtilTest, WriteTruncatesExisting) {
  write_file(dir_ / "f", std::string("long old content"));
  write_file(dir_ / "f", std::string("new"));
  const auto bytes = read_file(dir_ / "f");
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "new");
}

TEST_F(IoUtilTest, EmptyFileRoundTrips) {
  write_file(dir_ / "empty", std::string(""));
  EXPECT_TRUE(read_file(dir_ / "empty").empty());
}

TEST_F(IoUtilTest, ReadMissingFileThrowsWithPath) {
  try {
    read_file(dir_ / "does-not-exist");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("does-not-exist"), std::string::npos);
  }
}

TEST_F(IoUtilTest, ListFilesRecursiveSorted) {
  write_file(dir_ / "z.txt", std::string("z"));
  write_file(dir_ / "sub" / "a.txt", std::string("a"));
  write_file(dir_ / "sub" / "b.txt", std::string("b"));
  const auto files = list_files(dir_);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
}

TEST_F(IoUtilTest, ListFilesOnMissingRootIsEmpty) {
  EXPECT_TRUE(list_files(dir_ / "nope").empty());
}

}  // namespace
}  // namespace fhc::util
