// Unit + property tests for the deterministic RNG substrate.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace fhc::util {
namespace {

TEST(SplitMix64, IsDeterministicAndAdvancesState) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  const auto a1 = splitmix64(s1);
  const auto a2 = splitmix64(s2);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), a1);  // state advanced -> new output
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

TEST(HashStringSeed, DistinguishesStrings) {
  EXPECT_NE(hash_string_seed("OpenMalaria"), hash_string_seed("OpenMalarib"));
  EXPECT_NE(hash_string_seed(""), hash_string_seed(" "));
  EXPECT_EQ(hash_string_seed("Velvet"), hash_string_seed("Velvet"));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(123);
  Rng b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(1234);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(555);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(2024);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.08);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(77);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ChoicePicksExistingElements) {
  Rng rng(3);
  const std::vector<int> v{5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int c = rng.choice(v);
    EXPECT_TRUE(c >= 5 && c <= 7);
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(9);
  Rng parent2(9);
  Rng child1 = parent1.split(1);
  Rng child2 = parent2.split(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());

  Rng parent3(9);
  Rng child_a = parent3.split(1);
  Rng parent4(9);
  Rng child_b = parent4.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += child_a() == child_b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RandomPermutation, CoversAllIndices) {
  Rng rng(11);
  const auto perm = random_permutation(100, rng);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RandomPermutation, EmptyAndSingleton) {
  Rng rng(1);
  EXPECT_TRUE(random_permutation(0, rng).empty());
  const auto one = random_permutation(1, rng);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

// Property sweep: next_below stays unbiased enough across bounds (chi^2-ish
// loose check on the smallest buckets).
class RngBoundsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundsProperty, RoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 31 + 7);
  std::vector<int> histogram(static_cast<std::size_t>(bound), 0);
  const int n = 3000 * static_cast<int>(bound);
  for (int i = 0; i < n; ++i) {
    histogram[static_cast<std::size_t>(rng.next_below(bound))] += 1;
  }
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (const int count : histogram) {
    EXPECT_NEAR(count, expected, expected * 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngBoundsProperty,
                         ::testing::Values(2, 3, 5, 7, 16));

}  // namespace
}  // namespace fhc::util
