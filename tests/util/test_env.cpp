// Environment knobs used by the bench harness.
#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fhc::util {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) { ::unsetenv(name); }
  ~EnvGuard() { ::unsetenv(name_); }
  void set(const char* value) { ::setenv(name_, value, 1); }
  const char* name_;
};

TEST(EnvString, FallbackAndOverride) {
  EnvGuard guard("FHC_TEST_STR");
  EXPECT_EQ(env_string("FHC_TEST_STR", "fallback"), "fallback");
  guard.set("value");
  EXPECT_EQ(env_string("FHC_TEST_STR", "fallback"), "value");
  guard.set("");
  EXPECT_EQ(env_string("FHC_TEST_STR", "fallback"), "fallback");
}

TEST(EnvDouble, ParsesAndFallsBack) {
  EnvGuard guard("FHC_TEST_DBL");
  EXPECT_DOUBLE_EQ(env_double("FHC_TEST_DBL", 1.5), 1.5);
  guard.set("0.25");
  EXPECT_DOUBLE_EQ(env_double("FHC_TEST_DBL", 1.5), 0.25);
  guard.set("not-a-number");
  EXPECT_DOUBLE_EQ(env_double("FHC_TEST_DBL", 1.5), 1.5);
}

TEST(EnvInt, ParsesAndFallsBack) {
  EnvGuard guard("FHC_TEST_INT");
  EXPECT_EQ(env_int("FHC_TEST_INT", 7), 7);
  guard.set("42");
  EXPECT_EQ(env_int("FHC_TEST_INT", 7), 42);
  guard.set("-3");
  EXPECT_EQ(env_int("FHC_TEST_INT", 7), -3);
  guard.set("xyz");
  EXPECT_EQ(env_int("FHC_TEST_INT", 7), 7);
}

TEST(BenchScale, ClampsToUsableRange) {
  EnvGuard guard("FHC_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  guard.set("0.25");
  EXPECT_DOUBLE_EQ(bench_scale(), 0.25);
  guard.set("7.0");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);  // clamp high
  guard.set("0");
  EXPECT_DOUBLE_EQ(bench_scale(), 1e-3);  // clamp low
}

TEST(BenchSeed, DefaultsTo42) {
  EnvGuard guard("FHC_SEED");
  EXPECT_EQ(bench_seed(), 42u);
  guard.set("123");
  EXPECT_EQ(bench_seed(), 123u);
}

}  // namespace
}  // namespace fhc::util
