#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace fhc::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a:b:c", ':'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a::c", ':'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(":", ':'), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ':'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ':'), (std::vector<std::string>{"abc"}));
}

TEST(Join, InvertsSplit) {
  const std::vector<std::string> parts{"12", "part1", "part2"};
  EXPECT_EQ(join(parts, ":"), "12:part1:part2");
  EXPECT_EQ(join({}, ":"), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Trim, StripsAsciiWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(IsPrintableAscii, MatchesStringsCriterion) {
  EXPECT_TRUE(is_printable_ascii(' '));
  EXPECT_TRUE(is_printable_ascii('~'));
  EXPECT_TRUE(is_printable_ascii('A'));
  EXPECT_FALSE(is_printable_ascii('\t'));
  EXPECT_FALSE(is_printable_ascii('\n'));
  EXPECT_FALSE(is_printable_ascii(0x7f));
  EXPECT_FALSE(is_printable_ascii(0x80));
  EXPECT_FALSE(is_printable_ascii(0x00));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("OpenMalaria"), "openmalaria");
  EXPECT_EQ(to_lower("ABC-123"), "abc-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Fixed, FormatsDecimals) {
  EXPECT_EQ(fixed(0.5, 2), "0.50");
  EXPECT_EQ(fixed(0.789, 2), "0.79");
  EXPECT_EQ(fixed(1.0, 0), "1");
  EXPECT_EQ(fixed(0.07178, 4), "0.0718");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // no truncation
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
  EXPECT_EQ(pad_left("", 3), "   ");
}

}  // namespace
}  // namespace fhc::util
