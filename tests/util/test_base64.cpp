// RFC 4648 vectors and roundtrip/error-handling tests for base64.
#include "util/base64.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace fhc::util {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Base64Alphabet, HasSixtyFourUniqueCharacters) {
  ASSERT_EQ(kBase64Alphabet.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = i + 1; j < 64; ++j) {
      EXPECT_NE(kBase64Alphabet[i], kBase64Alphabet[j]);
    }
  }
}

TEST(Base64Char, MapsModulo64) {
  EXPECT_EQ(base64_char(0), 'A');
  EXPECT_EQ(base64_char(25), 'Z');
  EXPECT_EQ(base64_char(26), 'a');
  EXPECT_EQ(base64_char(63), '/');
  EXPECT_EQ(base64_char(64), 'A');   // wraps
  EXPECT_EQ(base64_char(129), 'B');  // 129 % 64 == 1
}

// RFC 4648 section 10 test vectors.
struct Rfc4648Case {
  const char* plain;
  const char* encoded;
};

class Base64Rfc : public ::testing::TestWithParam<Rfc4648Case> {};

TEST_P(Base64Rfc, EncodeMatchesRfc) {
  const auto [plain, encoded] = GetParam();
  EXPECT_EQ(base64_encode(as_bytes(plain)), encoded);
}

TEST_P(Base64Rfc, DecodeMatchesRfc) {
  const auto [plain, encoded] = GetParam();
  EXPECT_EQ(base64_decode(encoded), plain);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, Base64Rfc,
    ::testing::Values(Rfc4648Case{"", ""}, Rfc4648Case{"f", "Zg=="},
                      Rfc4648Case{"fo", "Zm8="}, Rfc4648Case{"foo", "Zm9v"},
                      Rfc4648Case{"foob", "Zm9vYg=="},
                      Rfc4648Case{"fooba", "Zm9vYmE="},
                      Rfc4648Case{"foobar", "Zm9vYmFy"}));

TEST(Base64, RoundTripsBinaryData) {
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  EXPECT_EQ(base64_decode(base64_encode(as_bytes(data))), data);
}

TEST(Base64, DecodeRejectsBadLength) {
  EXPECT_THROW(base64_decode("abc"), std::invalid_argument);
  EXPECT_THROW(base64_decode("a"), std::invalid_argument);
}

TEST(Base64, DecodeRejectsBadCharacters) {
  EXPECT_THROW(base64_decode("ab!d"), std::invalid_argument);
  EXPECT_THROW(base64_decode("ab\nd"), std::invalid_argument);
}

TEST(Base64, DecodeRejectsBadPadding) {
  EXPECT_THROW(base64_decode("=abc"), std::invalid_argument);
  EXPECT_THROW(base64_decode("a==="), std::invalid_argument);
  EXPECT_THROW(base64_decode("Zg==Zg=="), std::invalid_argument);  // data after pad
}

}  // namespace
}  // namespace fhc::util
