// Thread pool and parallel_for: coverage, determinism of effects, nesting,
// exception propagation.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fhc::util {
namespace {

TEST(ThreadPool, HasAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  ThreadPool pool3(3);
  EXPECT_EQ(pool3.size(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, 0, 1000, 16, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndReversedRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, 1, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  ThreadPool pool(4);
  // grain >= n forces the serial fast path; indices must still be visited.
  std::vector<int> visits(8, 0);
  parallel_for(pool, 0, 8, 100, [&](std::size_t i) { visits[i] += 1; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 8);
}

TEST(ParallelFor, DisjointWritesProduceDeterministicResult) {
  ThreadPool pool(4);
  std::vector<std::size_t> out_a(5000);
  std::vector<std::size_t> out_b(5000);
  parallel_for(pool, 0, 5000, 8, [&](std::size_t i) { out_a[i] = i * i; });
  parallel_for(pool, 0, 5000, 64, [&](std::size_t i) { out_b[i] = i * i; });
  EXPECT_EQ(out_a, out_b);
}

TEST(ParallelFor, NestedCallsDegradeToSerialWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 0, 8, 1, [&](std::size_t) {
    // Nested parallel_for on the same pool must not deadlock.
    parallel_for(pool, 0, 10, 1, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelFor, SharedPoolConvenienceOverload) {
  std::vector<std::atomic<int>> visits(256);
  parallel_for(256, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ThrowingTaskSurfacesInWaitIdle) {
  // Before the fix the exception escaped the worker thread and called
  // std::terminate, and in_flight_ stayed stuck so wait_idle hung forever.
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // The exception is cleared and the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, FirstOfSeveralExceptionsWins) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // later exceptions were dropped, not queued
}

TEST(ParallelFor, ThrowingBodyRethrowsOnCallingThread) {
  ThreadPool pool(4);
  bool caught = false;
  try {
    parallel_for(pool, 0, 1000, 1, [](std::size_t i) {
      if (i == 137) throw std::runtime_error("body failed at 137");
    });
  } catch (const std::runtime_error& error) {
    caught = true;
    EXPECT_STREQ(error.what(), "body failed at 137");
  }
  EXPECT_TRUE(caught);
  // The pool is still functional after the failed loop.
  std::atomic<int> total{0};
  parallel_for(pool, 0, 100, 1, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, ThrowOnSerialFastPathPropagates) {
  ThreadPool pool(4);
  // grain >= n forces the serial path; the exception must still surface.
  EXPECT_THROW(
      parallel_for(pool, 0, 4, 100,
                   [](std::size_t) { throw std::invalid_argument("serial"); }),
      std::invalid_argument);
}

TEST(ParallelFor, NestedThrowPropagatesThroughOuterLoop) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 8, 1,
                            [&](std::size_t) {
                              parallel_for(pool, 0, 10, 1, [](std::size_t j) {
                                if (j == 5) throw std::runtime_error("nested");
                              });
                            }),
               std::runtime_error);
}

TEST(ParallelFor, UnevenWorkStillCompletes) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 0, 100, 4, [&](std::size_t i) {
    long local = 0;
    for (std::size_t k = 0; k < i * 100; ++k) local += static_cast<long>(k % 7);
    sum.fetch_add(local >= 0 ? 1 : 0);
  });
  EXPECT_EQ(sum.load(), 100);
}

}  // namespace
}  // namespace fhc::util
