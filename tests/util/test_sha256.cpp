// FIPS 180-4 / NIST test vectors and streaming behaviour of SHA-256.
#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace fhc::util {
namespace {

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(Sha256::hex_digest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hex_digest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hex_digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: forces the padding into a second block.
  const std::string input(64, 'a');
  EXPECT_EQ(Sha256::hex_digest(input),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits in the same block as the 0x80 pad byte;
  // 56 bytes: it does not. Both boundaries must be exact.
  EXPECT_EQ(Sha256::hex_digest(std::string(55, 'a')),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(Sha256::hex_digest(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  const auto digest = hasher.finish();
  std::string hex;
  static constexpr char kHex[] = "0123456789abcdef";
  for (const auto byte : digest) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xf]);
  }
  EXPECT_EQ(hex, "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly and at length.";
  for (std::size_t cut = 0; cut <= data.size(); cut += 7) {
    Sha256 hasher;
    hasher.update(data.substr(0, cut));
    hasher.update(data.substr(cut));
    const auto streamed = hasher.finish();
    Sha256 oneshot;
    oneshot.update(data);
    EXPECT_EQ(streamed, oneshot.finish()) << "cut at " << cut;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.update("garbage");
  hasher.reset();
  hasher.update("abc");
  const auto digest = hasher.finish();
  Sha256 fresh;
  fresh.update("abc");
  EXPECT_EQ(digest, fresh.finish());
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hex_digest("velveth"), Sha256::hex_digest("velvetg"));
  EXPECT_NE(Sha256::hex_digest("a"), Sha256::hex_digest("b"));
}

}  // namespace
}  // namespace fhc::util
