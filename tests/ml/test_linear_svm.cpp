// Linear SVM (OvR hinge/SGD) baseline.
#include "ml/linear_svm.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace fhc::ml {
namespace {

struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs separable_blobs(std::size_t per_class, int classes, fhc::util::Rng& rng) {
  // Centers on a circle: every class is linearly separable from the rest,
  // which one-vs-rest requires (colinear centers would squeeze the middle
  // class into a region no linear boundary can isolate).
  Blobs data{Matrix(per_class * static_cast<std::size_t>(classes), 2), {}};
  data.y.resize(data.x.rows());
  for (int c = 0; c < classes; ++c) {
    const double angle = 2.0 * 3.14159265358979 * c / classes;
    const float cx = static_cast<float>(6.0 * std::cos(angle));
    const float cy = static_cast<float>(6.0 * std::sin(angle));
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = static_cast<std::size_t>(c) * per_class + i;
      data.x.at(row, 0) = cx + static_cast<float>(rng.gaussian() * 0.5);
      data.x.at(row, 1) = cy + static_cast<float>(rng.gaussian() * 0.5);
      data.y[row] = c;
    }
  }
  return data;
}

TEST(LinearSvm, SeparatesTwoBlobs) {
  fhc::util::Rng rng(1);
  const Blobs data = separable_blobs(60, 2, rng);
  LinearSvm svm;
  svm.fit(data.x, data.y, 2, {}, SvmParams{});
  int correct = 0;
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    correct += svm.predict(data.x.row(i)) == data.y[i] ? 1 : 0;
  }
  EXPECT_GE(correct, 118);  // 120 total
}

TEST(LinearSvm, OneVsRestHandlesThreeClasses) {
  fhc::util::Rng rng(2);
  const Blobs data = separable_blobs(50, 3, rng);
  LinearSvm svm;
  svm.fit(data.x, data.y, 3, {}, SvmParams{});
  int correct = 0;
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    correct += svm.predict(data.x.row(i)) == data.y[i] ? 1 : 0;
  }
  EXPECT_GE(correct, 140);  // 150 total
}

TEST(LinearSvm, DecisionFunctionOrdersMargins) {
  fhc::util::Rng rng(3);
  const Blobs data = separable_blobs(40, 2, rng);
  LinearSvm svm;
  svm.fit(data.x, data.y, 2, {}, SvmParams{});
  // A point at class 0's center must have margin_0 > margin_1.
  Matrix probe(1, 2);
  probe.at(0, 0) = 6.0f;  // class 0 center (angle 0)
  probe.at(0, 1) = 0.0f;
  const auto margins = svm.decision_function(probe.row(0));
  ASSERT_EQ(margins.size(), 2u);
  EXPECT_GT(margins[0], margins[1]);
}

TEST(LinearSvm, SoftmaxProbabilitiesFormDistribution) {
  fhc::util::Rng rng(4);
  const Blobs data = separable_blobs(30, 3, rng);
  LinearSvm svm;
  svm.fit(data.x, data.y, 3, {}, SvmParams{});
  const auto proba = svm.predict_proba(data.x.row(5));
  ASSERT_EQ(proba.size(), 3u);
  EXPECT_NEAR(std::accumulate(proba.begin(), proba.end(), 0.0), 1.0, 1e-9);
  for (const double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LinearSvm, DeterministicGivenSeed) {
  fhc::util::Rng rng(5);
  const Blobs data = separable_blobs(30, 2, rng);
  LinearSvm a;
  LinearSvm b;
  a.fit(data.x, data.y, 2, {}, SvmParams{.seed = 99});
  b.fit(data.x, data.y, 2, {}, SvmParams{.seed = 99});
  for (std::size_t i = 0; i < data.x.rows(); i += 5) {
    const auto ma = a.decision_function(data.x.row(i));
    const auto mb = b.decision_function(data.x.row(i));
    for (std::size_t c = 0; c < ma.size(); ++c) EXPECT_DOUBLE_EQ(ma[c], mb[c]);
  }
}

TEST(LinearSvm, SampleWeightsShiftTheBoundary) {
  // Overlapping classes; upweighting class 1 should raise its recall.
  fhc::util::Rng rng(6);
  Matrix x(100, 1);
  std::vector<int> y(100);
  for (std::size_t i = 0; i < 50; ++i) {
    x.at(i, 0) = static_cast<float>(rng.gaussian() - 0.4);
    y[i] = 0;
    x.at(50 + i, 0) = static_cast<float>(rng.gaussian() + 0.4);
    y[50 + i] = 1;
  }
  const auto recall1 = [&](std::span<const double> weights) {
    LinearSvm svm;
    svm.fit(x, y, 2, weights, SvmParams{});
    int hits = 0;
    for (std::size_t i = 50; i < 100; ++i) hits += svm.predict(x.row(i)) == 1 ? 1 : 0;
    return hits;
  };
  std::vector<double> boosted(100, 1.0);
  for (std::size_t i = 50; i < 100; ++i) boosted[i] = 8.0;
  EXPECT_GE(recall1(boosted), recall1({}));
}

TEST(LinearSvm, RejectsBadInput) {
  Matrix x(2, 1);
  LinearSvm svm;
  EXPECT_THROW(svm.fit(x, {0}, 2, {}, SvmParams{}), std::invalid_argument);
  EXPECT_THROW(svm.decision_function(x.row(0)), std::logic_error);
}

}  // namespace
}  // namespace fhc::ml
