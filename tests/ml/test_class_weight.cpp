// Balanced class weighting (scikit-learn semantics).
#include "ml/class_weight.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace fhc::ml {
namespace {

TEST(BalancedClassWeights, MatchesSklearnFormula) {
  // labels: class 0 x4, class 1 x1 -> w = n / (k * count)
  const std::vector<int> labels{0, 0, 0, 0, 1};
  const auto weights = balanced_class_weights(labels);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 5.0 / (2.0 * 4.0));
  EXPECT_DOUBLE_EQ(weights[1], 5.0 / (2.0 * 1.0));
}

TEST(BalancedClassWeights, UniformLabelsGetUnitWeight) {
  const std::vector<int> labels{0, 0, 1, 1, 2, 2};
  for (const double w : balanced_class_weights(labels)) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(BalancedClassWeights, AbsentClassGetsZero) {
  // Label 1 never appears (labels are 0 and 2).
  const std::vector<int> labels{0, 2, 2, 0};
  const auto weights = balanced_class_weights(labels);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_DOUBLE_EQ(weights[1], 0.0);
  EXPECT_GT(weights[0], 0.0);
}

TEST(BalancedClassWeights, EachClassContributesEqualTotalWeight) {
  const std::vector<int> labels{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2};
  const auto class_weights = balanced_class_weights(labels);
  std::vector<double> per_class_total(3, 0.0);
  for (const int label : labels) {
    per_class_total[static_cast<std::size_t>(label)] +=
        class_weights[static_cast<std::size_t>(label)];
  }
  EXPECT_NEAR(per_class_total[0], per_class_total[1], 1e-12);
  EXPECT_NEAR(per_class_total[1], per_class_total[2], 1e-12);
}

TEST(BalancedSampleWeights, ExpandsPerSample) {
  const std::vector<int> labels{0, 1, 1, 1};
  const auto weights = balanced_sample_weights(labels);
  ASSERT_EQ(weights.size(), 4u);
  EXPECT_DOUBLE_EQ(weights[0], 4.0 / 2.0);        // class 0: 4/(2*1)
  EXPECT_DOUBLE_EQ(weights[1], 4.0 / (2.0 * 3));  // class 1: 4/(2*3)
  EXPECT_DOUBLE_EQ(weights[1], weights[2]);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(total, 4.0, 1e-12);  // balanced weights preserve total mass
}

TEST(BalancedClassWeights, RejectsNegativeLabels) {
  EXPECT_THROW(balanced_class_weights({0, -1}), std::invalid_argument);
}

}  // namespace
}  // namespace fhc::ml
