// FlatForest: the compiled SoA inference plan must be bit-identical to
// the nested per-tree walk on fitted AND text-loaded forests (including
// leaf-only and deep trees), and the binary model format must round-trip
// byte-identically.
#include "ml/flat_forest.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace fhc::ml {
namespace {

struct Dataset {
  Matrix x;
  std::vector<int> y;
  int classes;
};

/// Random dataset with mildly class-correlated features so trees grow
/// real structure (plus noise so they grow deep).
Dataset make_dataset(std::size_t n, std::size_t features, int classes,
                     fhc::util::Rng& rng) {
  Dataset data{Matrix(n, features), std::vector<int>(n), classes};
  for (std::size_t i = 0; i < n; ++i) {
    const int cls =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(classes)));
    data.y[i] = cls;
    for (std::size_t f = 0; f < features; ++f) {
      const double shift =
          f % static_cast<std::size_t>(classes) == static_cast<std::size_t>(cls)
              ? 2.0
              : 0.0;
      data.x.at(i, f) = static_cast<float>(shift + rng.gaussian());
    }
  }
  return data;
}

/// Every probe row must produce EXACTLY the same doubles through the plan
/// as through the nested reference walk, and the float matrix path must
/// match the per-row casts exactly.
void expect_plan_matches_nested(const RandomForest& forest, const Matrix& probes) {
  ASSERT_TRUE(forest.plan().compiled());
  const Matrix matrix_proba = forest.predict_proba_matrix(probes);
  for (std::size_t i = 0; i < probes.rows(); ++i) {
    const std::vector<double> plan = forest.predict_proba(probes.row(i));
    const std::vector<double> nested = forest.predict_proba_nested(probes.row(i));
    ASSERT_EQ(plan.size(), nested.size());
    for (std::size_t c = 0; c < plan.size(); ++c) {
      // Bit-identity, not closeness: same float loads, same double adds,
      // same multiply by 1/n_trees, in the same order.
      EXPECT_EQ(plan[c], nested[c]) << "row " << i << " class " << c;
      EXPECT_EQ(matrix_proba.at(i, c), static_cast<float>(nested[c]))
          << "row " << i << " class " << c;
    }
  }
}

TEST(FlatForest, BitIdenticalToNestedOverRandomForests) {
  fhc::util::Rng rng(11);
  int case_index = 0;
  for (const int max_depth : {0, 1, 3}) {
    for (const int trees : {1, 9}) {
      for (const int classes : {2, 5}) {
        SCOPED_TRACE("case " + std::to_string(case_index++) + " depth " +
                     std::to_string(max_depth) + " trees " +
                     std::to_string(trees) + " classes " +
                     std::to_string(classes));
        const Dataset data = make_dataset(120, 7, classes, rng);
        ForestParams params;
        params.n_estimators = trees;
        params.tree.max_depth = max_depth;
        params.seed = static_cast<std::uint64_t>(17 + case_index);
        params.bootstrap = case_index % 2 == 0;
        RandomForest forest;
        forest.fit(data.x, data.y, classes, {}, params);
        expect_plan_matches_nested(forest, data.x);
      }
    }
  }
}

TEST(FlatForest, BitIdenticalOnLeafOnlyTrees) {
  // Single-label data collapses every tree to one leaf — the shallowest
  // shape the walk must handle (root IS the leaf).
  fhc::util::Rng rng(12);
  Dataset data = make_dataset(40, 3, 2, rng);
  std::fill(data.y.begin(), data.y.end(), 1);
  ForestParams params;
  params.n_estimators = 5;
  RandomForest forest;
  forest.fit(data.x, data.y, 2, {}, params);
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    EXPECT_EQ(forest.tree(t).node_count(), 1u);
  }
  expect_plan_matches_nested(forest, data.x);
}

TEST(FlatForest, BitIdenticalOnDeepTrees) {
  // Pure-noise labels force deep, unbalanced trees.
  fhc::util::Rng rng(13);
  Dataset data = make_dataset(300, 4, 3, rng);
  for (int& label : data.y) {
    label = static_cast<int>(rng.next_below(3));
  }
  ForestParams params;
  params.n_estimators = 7;
  RandomForest forest;
  forest.fit(data.x, data.y, 3, {}, params);
  int max_depth = 0;
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    max_depth = std::max(max_depth, forest.tree(t).depth());
  }
  EXPECT_GE(max_depth, 8);
  expect_plan_matches_nested(forest, data.x);
}

TEST(FlatForest, BitIdenticalAfterTextRoundTrip) {
  fhc::util::Rng rng(14);
  const Dataset data = make_dataset(150, 6, 4, rng);
  ForestParams params;
  params.n_estimators = 11;
  RandomForest forest;
  forest.fit(data.x, data.y, 4, {}, params);

  std::stringstream text;
  forest.save(text);
  RandomForest loaded;
  loaded.load(text);
  expect_plan_matches_nested(loaded, data.x);
  for (std::size_t i = 0; i < data.x.rows(); i += 7) {
    const auto original = forest.predict_proba(data.x.row(i));
    const auto restored = loaded.predict_proba(data.x.row(i));
    for (std::size_t c = 0; c < original.size(); ++c) {
      EXPECT_EQ(original[c], restored[c]);
    }
  }
}

TEST(FlatForest, AccumulateBlockMatchesChunkedCalls) {
  fhc::util::Rng rng(15);
  const Dataset data = make_dataset(130, 5, 3, rng);
  ForestParams params;
  params.n_estimators = 6;
  RandomForest forest;
  forest.fit(data.x, data.y, 3, {}, params);

  // predict_proba_block over an arbitrary sub-range must land in the same
  // out rows as the full-matrix pass (chunk boundaries included: 130 rows
  // crosses the 64-row internal chunk twice).
  Matrix full(data.x.rows(), 3);
  forest.plan().predict_proba_block(data.x, full);
  Matrix partial(data.x.rows(), 3, -1.0f);
  forest.plan().predict_proba_block(data.x, 10, 97, partial);
  for (std::size_t i = 10; i < 97; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(partial.at(i, c), full.at(i, c));
    }
  }
  // Rows outside the range are untouched.
  EXPECT_EQ(partial.at(9, 0), -1.0f);
  EXPECT_EQ(partial.at(97, 0), -1.0f);
}

RandomForest small_fitted_forest(int trees = 9, int classes = 4) {
  fhc::util::Rng rng(16);
  const Dataset data = make_dataset(90, 5, classes, rng);
  ForestParams params;
  params.n_estimators = trees;
  RandomForest forest;
  forest.fit(data.x, data.y, classes, {}, params);
  return forest;
}

std::string binary_image(const RandomForest& forest) {
  std::ostringstream out(std::ios::binary);
  forest.save_binary(out);
  return out.str();
}

void load_from_string(RandomForest& forest, const std::string& image) {
  std::istringstream in(image, std::ios::binary);
  forest.load_binary(in);
}

TEST(FlatForestBinary, SaveLoadSaveIsByteIdentical) {
  const RandomForest forest = small_fitted_forest();
  const std::string first = binary_image(forest);
  RandomForest loaded;
  load_from_string(loaded, first);
  const std::string second = binary_image(loaded);
  EXPECT_EQ(first, second);
  // And deterministic across repeated saves.
  EXPECT_EQ(first, binary_image(forest));
}

TEST(FlatForestBinary, LoadedForestPredictsIdentically) {
  fhc::util::Rng rng(17);
  const Dataset data = make_dataset(90, 5, 4, rng);
  ForestParams params;
  params.n_estimators = 9;
  RandomForest forest;
  forest.fit(data.x, data.y, 4, {}, params);

  RandomForest loaded;
  load_from_string(loaded, binary_image(forest));
  EXPECT_EQ(loaded.n_classes(), forest.n_classes());
  EXPECT_EQ(loaded.tree_count(), forest.tree_count());
  expect_plan_matches_nested(loaded, data.x);
  for (std::size_t i = 0; i < data.x.rows(); i += 5) {
    const auto original = forest.predict_proba(data.x.row(i));
    const auto restored = loaded.predict_proba(data.x.row(i));
    for (std::size_t c = 0; c < original.size(); ++c) {
      EXPECT_EQ(original[c], restored[c]);
    }
  }
  const auto imp_original = forest.feature_importances();
  const auto imp_restored = loaded.feature_importances();
  ASSERT_EQ(imp_original.size(), imp_restored.size());
  for (std::size_t f = 0; f < imp_original.size(); ++f) {
    EXPECT_EQ(imp_original[f], imp_restored[f]);
  }
}

TEST(FlatForestBinary, BinaryLoadThenTextSaveMatchesOriginalTextSave) {
  // The binary loader reconstructs the full per-tree view, so text
  // serialization survives a pass through the binary format byte for
  // byte.
  const RandomForest forest = small_fitted_forest();
  RandomForest loaded;
  load_from_string(loaded, binary_image(forest));
  std::ostringstream original_text;
  std::ostringstream restored_text;
  forest.save(original_text);
  loaded.save(restored_text);
  EXPECT_EQ(original_text.str(), restored_text.str());
}

TEST(FlatForestBinary, RejectsBadMagicAndVersion) {
  const RandomForest forest = small_fitted_forest(3, 2);
  std::string image = binary_image(forest);
  {
    std::string bad = image;
    bad[0] = 'X';
    RandomForest loaded;
    EXPECT_THROW(load_from_string(loaded, bad), std::runtime_error);
  }
  {
    std::string bad = image;
    bad[8] = 99;  // version field
    RandomForest loaded;
    EXPECT_THROW(load_from_string(loaded, bad), std::runtime_error);
  }
}

TEST(FlatForestBinary, RejectsTruncation) {
  const RandomForest forest = small_fitted_forest(3, 2);
  const std::string image = binary_image(forest);
  for (const double fraction : {0.05, 0.3, 0.7, 0.99}) {
    RandomForest loaded;
    EXPECT_THROW(
        load_from_string(loaded, image.substr(0, static_cast<std::size_t>(
                                                     image.size() * fraction))),
        std::runtime_error)
        << "fraction " << fraction;
  }
}

TEST(FlatForestBinary, RejectsBackwardChildLink) {
  // Craft a back-link in the child[] section: with T trees the sections
  // before child[] occupy 4*(3T+2) + 8N bytes; the root's left-child slot
  // is the first child entry. Pointing it at node 0 (itself) must be
  // rejected — forward links are what make every walk terminate.
  const RandomForest forest = small_fitted_forest(1, 2);
  std::string image = binary_image(forest);
  std::uint32_t total_nodes = 0;
  std::memcpy(&total_nodes, image.data() + 24, sizeof total_nodes);
  ASSERT_GT(total_nodes, 1u);  // needs an interior root to corrupt
  const std::size_t header = 64;
  const std::size_t child_offset = header + 4 * (3 * 1 + 2) + 8 * total_nodes;
  const std::int32_t self_link = 0;
  std::memcpy(image.data() + child_offset, &self_link, sizeof self_link);
  RandomForest loaded;
  EXPECT_THROW(load_from_string(loaded, image), std::runtime_error);
}

TEST(FlatForestBinary, RejectsUnfittedSave) {
  RandomForest forest;
  std::ostringstream out;
  EXPECT_THROW(forest.save_binary(out), std::logic_error);
}

}  // namespace
}  // namespace fhc::ml
