// k-NN baseline.
#include "ml/knn.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace fhc::ml {
namespace {

TEST(Knn, NearestNeighbourWinsWithKOne) {
  Matrix x(4, 1);
  x.at(0, 0) = 0.0f;
  x.at(1, 0) = 1.0f;
  x.at(2, 0) = 10.0f;
  x.at(3, 0) = 11.0f;
  const std::vector<int> y{0, 0, 1, 1};
  KnnClassifier knn;
  knn.fit(x, y, 2, KnnParams{.k = 1, .distance_weighted = false});

  Matrix probe(1, 1);
  probe.at(0, 0) = 0.4f;
  EXPECT_EQ(knn.predict(probe.row(0)), 0);
  probe.at(0, 0) = 10.6f;
  EXPECT_EQ(knn.predict(probe.row(0)), 1);
}

TEST(Knn, MajorityVoteWithLargerK) {
  Matrix x(5, 1);
  x.at(0, 0) = 0.0f;
  x.at(1, 0) = 0.2f;
  x.at(2, 0) = 0.4f;
  x.at(3, 0) = 5.0f;
  x.at(4, 0) = 5.2f;
  const std::vector<int> y{0, 0, 0, 1, 1};
  KnnClassifier knn;
  knn.fit(x, y, 2, KnnParams{.k = 5, .distance_weighted = false});
  Matrix probe(1, 1);
  probe.at(0, 0) = 0.3f;
  EXPECT_EQ(knn.predict(probe.row(0)), 0);  // 3 votes vs 2
}

TEST(Knn, DistanceWeightingBreaksTies) {
  // Two class-0 points far away, two class-1 points close: with k = 4 and
  // distance weighting, class 1 must win despite the tie in counts.
  Matrix x(4, 1);
  x.at(0, 0) = -10.0f;
  x.at(1, 0) = -10.5f;
  x.at(2, 0) = 1.0f;
  x.at(3, 0) = 1.2f;
  const std::vector<int> y{0, 0, 1, 1};
  KnnClassifier knn;
  knn.fit(x, y, 2, KnnParams{.k = 4, .distance_weighted = true});
  Matrix probe(1, 1);
  probe.at(0, 0) = 1.1f;
  EXPECT_EQ(knn.predict(probe.row(0)), 1);
}

TEST(Knn, ProbabilitiesFormDistribution) {
  fhc::util::Rng rng(1);
  Matrix x(50, 2);
  std::vector<int> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x.at(i, 0) = static_cast<float>(rng.gaussian());
    x.at(i, 1) = static_cast<float>(rng.gaussian());
    y[i] = static_cast<int>(i % 3);
  }
  KnnClassifier knn;
  knn.fit(x, y, 3, KnnParams{.k = 7});
  const auto proba = knn.predict_proba(x.row(0));
  ASSERT_EQ(proba.size(), 3u);
  EXPECT_NEAR(std::accumulate(proba.begin(), proba.end(), 0.0), 1.0, 1e-9);
}

TEST(Knn, ExactTrainingPointIsRecalled) {
  Matrix x(10, 1);
  std::vector<int> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x.at(i, 0) = static_cast<float>(i);
    y[i] = static_cast<int>(i % 2);
  }
  KnnClassifier knn;
  knn.fit(x, y, 2, KnnParams{.k = 1});
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(knn.predict(x.row(i)), y[i]);
  }
}

TEST(Knn, KLargerThanDatasetIsClamped) {
  Matrix x(3, 1);
  const std::vector<int> y{0, 1, 1};
  KnnClassifier knn;
  knn.fit(x, y, 2, KnnParams{.k = 50, .distance_weighted = false});
  Matrix probe(1, 1);
  EXPECT_EQ(knn.predict(probe.row(0)), 1);  // global majority
}

TEST(Knn, RejectsBadInput) {
  Matrix x(2, 1);
  KnnClassifier knn;
  EXPECT_THROW(knn.fit(x, {0}, 2, KnnParams{}), std::invalid_argument);
  EXPECT_THROW(knn.fit(x, {0, 1}, 2, KnnParams{.k = 0}), std::invalid_argument);
  EXPECT_THROW(knn.predict_proba(x.row(0)), std::logic_error);
}

}  // namespace
}  // namespace fhc::ml
