// The dense row-major matrix container and the Dataset value type.
#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include "ml/dataset.hpp"

namespace fhc::ml {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(m.at(r, c), 2.5f);
  }
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  m.at(1, 0) = 10.0f;
  m.at(1, 2) = 12.0f;
  const auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_FLOAT_EQ(row[0], 10.0f);
  EXPECT_FLOAT_EQ(row[2], 12.0f);
  // Mutation through the span is visible.
  m.row(1)[1] = 11.0f;
  EXPECT_FLOAT_EQ(m.at(1, 1), 11.0f);
}

TEST(Matrix, GatherRowsSelectsAndOrders) {
  Matrix m(4, 2);
  for (std::size_t r = 0; r < 4; ++r) m.at(r, 0) = static_cast<float>(r);
  const std::vector<std::size_t> pick{3, 0, 3};
  const Matrix g = m.gather_rows(pick);
  ASSERT_EQ(g.rows(), 3u);
  EXPECT_FLOAT_EQ(g.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(g.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(2, 0), 3.0f);
}

TEST(Matrix, GatherRowsRejectsOutOfRange) {
  Matrix m(2, 2);
  const std::vector<std::size_t> bad{0, 5};
  EXPECT_THROW(m.gather_rows(bad), std::out_of_range);
}

TEST(Dataset, LabelNameHandlesUnknown) {
  Dataset data;
  data.class_names = {"Velvet", "HMMER"};
  EXPECT_EQ(data.label_name(0), "Velvet");
  EXPECT_EQ(data.label_name(1), "HMMER");
  EXPECT_EQ(data.label_name(kUnknownLabel), "-1");
}

}  // namespace
}  // namespace fhc::ml
