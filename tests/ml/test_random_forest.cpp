// Random forest: ensemble accuracy, probability averaging, importances,
// determinism under parallel training.
#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fhc::ml {
namespace {

struct FourBlobs {
  Matrix x;
  std::vector<int> y;
};

/// Four Gaussian blobs in the 2-D plane corners (classes 0..3).
FourBlobs make_four_blobs(std::size_t per_class, fhc::util::Rng& rng) {
  FourBlobs data{Matrix(4 * per_class, 2), {}};
  data.y.resize(4 * per_class);
  const float centers[4][2] = {{-3, -3}, {-3, 3}, {3, -3}, {3, 3}};
  for (int c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = static_cast<std::size_t>(c) * per_class + i;
      data.x.at(row, 0) = centers[c][0] + static_cast<float>(rng.gaussian() * 0.7);
      data.x.at(row, 1) = centers[c][1] + static_cast<float>(rng.gaussian() * 0.7);
      data.y[row] = c;
    }
  }
  return data;
}

ForestParams quick_params(int trees = 25) {
  ForestParams params;
  params.n_estimators = trees;
  params.seed = 7;
  return params;
}

TEST(RandomForest, ClassifiesFourBlobs) {
  fhc::util::Rng rng(1);
  const FourBlobs data = make_four_blobs(60, rng);
  RandomForest forest;
  forest.fit(data.x, data.y, 4, {}, quick_params());
  int correct = 0;
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    correct += forest.predict(data.x.row(i)) == data.y[i] ? 1 : 0;
  }
  EXPECT_GE(correct, 230);  // 240 total; bootstrap noise allows a few misses
}

TEST(RandomForest, ProbabilitiesAreAveragedAndNormalized) {
  fhc::util::Rng rng(2);
  const FourBlobs data = make_four_blobs(40, rng);
  RandomForest forest;
  forest.fit(data.x, data.y, 4, {}, quick_params());
  for (std::size_t i = 0; i < data.x.rows(); i += 13) {
    const auto proba = forest.predict_proba(data.x.row(i));
    ASSERT_EQ(proba.size(), 4u);
    EXPECT_NEAR(std::accumulate(proba.begin(), proba.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(RandomForest, ProbaMatrixMatchesPerRowCalls) {
  fhc::util::Rng rng(3);
  const FourBlobs data = make_four_blobs(25, rng);
  RandomForest forest;
  forest.fit(data.x, data.y, 4, {}, quick_params(10));
  const Matrix proba = forest.predict_proba_matrix(data.x);
  for (std::size_t i = 0; i < data.x.rows(); i += 11) {
    const auto row_proba = forest.predict_proba(data.x.row(i));
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(proba.at(i, c), row_proba[c], 1e-6);
    }
  }
}

TEST(RandomForest, DeterministicAcrossRuns) {
  // Parallel tree training must not affect results: per-tree RNG streams
  // are derived from (seed, tree index), not from scheduling.
  fhc::util::Rng rng(4);
  const FourBlobs data = make_four_blobs(30, rng);
  RandomForest a;
  RandomForest b;
  a.fit(data.x, data.y, 4, {}, quick_params());
  b.fit(data.x, data.y, 4, {}, quick_params());
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    const auto pa = a.predict_proba(data.x.row(i));
    const auto pb = b.predict_proba(data.x.row(i));
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(pa[c], pb[c]);
  }
}

TEST(RandomForest, SerialAndParallelFitAreBitIdentical) {
  // The serial reference path (1-thread pool) and pool-parallel training
  // must produce byte-identical ensembles — the whole serialized model is
  // compared, not just predictions, so any scheduling dependence in
  // bootstrap draws or node splits would show up.
  fhc::util::Rng rng(9);
  const FourBlobs data = make_four_blobs(30, rng);
  fhc::util::ThreadPool serial_pool(1);
  fhc::util::ThreadPool wide_pool(4);
  RandomForest serial;
  RandomForest parallel;
  serial.fit(data.x, data.y, 4, {}, quick_params(), &serial_pool);
  parallel.fit(data.x, data.y, 4, {}, quick_params(), &wide_pool);
  std::ostringstream serial_text;
  std::ostringstream parallel_text;
  serial.save(serial_text);
  parallel.save(parallel_text);
  EXPECT_EQ(serial_text.str(), parallel_text.str());

  // The default (shared-pool) path matches both.
  RandomForest shared;
  shared.fit(data.x, data.y, 4, {}, quick_params());
  std::ostringstream shared_text;
  shared.save(shared_text);
  EXPECT_EQ(serial_text.str(), shared_text.str());
}

TEST(RandomForest, SeedChangesEnsemble) {
  fhc::util::Rng rng(5);
  const FourBlobs data = make_four_blobs(30, rng);
  ForestParams params_a = quick_params();
  ForestParams params_b = quick_params();
  params_b.seed = 8888;
  RandomForest a;
  RandomForest b;
  a.fit(data.x, data.y, 4, {}, params_a);
  b.fit(data.x, data.y, 4, {}, params_b);
  bool any_difference = false;
  for (std::size_t i = 0; i < data.x.rows() && !any_difference; ++i) {
    const auto pa = a.predict_proba(data.x.row(i));
    const auto pb = b.predict_proba(data.x.row(i));
    for (std::size_t c = 0; c < 4; ++c) {
      if (std::abs(pa[c] - pb[c]) > 1e-12) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomForest, FeatureImportancesSumToOne) {
  fhc::util::Rng rng(6);
  const FourBlobs data = make_four_blobs(40, rng);
  RandomForest forest;
  forest.fit(data.x, data.y, 4, {}, quick_params());
  const auto importances = forest.feature_importances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
  // Both features are informative for the 2-D corner blobs.
  EXPECT_GT(importances[0], 0.2);
  EXPECT_GT(importances[1], 0.2);
}

TEST(RandomForest, BalancedWeightsLiftMinorityRecall) {
  // 190 vs 10 imbalance with overlapping blobs: balanced weights must not
  // reduce minority-class recall (usually they raise it).
  fhc::util::Rng rng(7);
  Matrix x(200, 1);
  std::vector<int> y(200);
  for (std::size_t i = 0; i < 190; ++i) {
    x.at(i, 0) = static_cast<float>(rng.gaussian());
    y[i] = 0;
  }
  for (std::size_t i = 190; i < 200; ++i) {
    x.at(i, 0) = static_cast<float>(rng.gaussian() + 1.5);
    y[i] = 1;
  }
  const auto recall_minority = [&](std::span<const double> weights) {
    RandomForest forest;
    forest.fit(x, y, 2, weights, quick_params(40));
    int hits = 0;
    for (std::size_t i = 190; i < 200; ++i) {
      hits += forest.predict(x.row(i)) == 1 ? 1 : 0;
    }
    return hits;
  };
  std::vector<double> balanced(200, 1.0);
  for (std::size_t i = 0; i < 190; ++i) balanced[i] = 200.0 / (2 * 190.0);
  for (std::size_t i = 190; i < 200; ++i) balanced[i] = 200.0 / (2 * 10.0);
  EXPECT_GE(recall_minority(balanced), recall_minority({}));
}

TEST(RandomForest, NoBootstrapMode) {
  fhc::util::Rng rng(8);
  const FourBlobs data = make_four_blobs(30, rng);
  ForestParams params = quick_params(5);
  params.bootstrap = false;
  RandomForest forest;
  forest.fit(data.x, data.y, 4, {}, params);
  int correct = 0;
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    correct += forest.predict(data.x.row(i)) == data.y[i] ? 1 : 0;
  }
  EXPECT_EQ(correct, 120);  // without bootstrap, training data is memorized
}

// One root split on feature 0, two leaves — valid when the forest claims
// at least one feature and matching importances.
constexpr const char* kTreeFeature0 =
    "tree 2 1 3 4 2\n"
    "0 0.5 1 2 -1\n"
    "-1 0 -1 -1 0\n"
    "-1 0 -1 -1 2\n"
    "1 0 0.25 0.75\n"
    "0.5 0.5\n";

TEST(RandomForestLoad, AcceptsWellFormedModelText) {
  std::istringstream in(std::string("forest 2 2 1\n") + kTreeFeature0);
  RandomForest forest;
  forest.load(in);
  EXPECT_EQ(forest.n_classes(), 2);
  EXPECT_EQ(forest.tree_count(), 1u);
  const std::vector<float> row{0.9f, 0.0f};
  EXPECT_EQ(forest.predict(row), 1);
}

TEST(RandomForestLoad, RejectsTreeFeatureBeyondNFeatures) {
  // The forest claims 1 feature but the tree splits on feature 5 —
  // predict_proba would read row[5] out of bounds for every sample.
  const std::string bad_tree =
      "tree 2 1 3 4 2\n"
      "5 0.5 1 2 -1\n"
      "-1 0 -1 -1 0\n"
      "-1 0 -1 -1 2\n"
      "1 0 0.25 0.75\n"
      "0.5 0.5\n";
  std::istringstream in("forest 2 1 1\n" + bad_tree);
  RandomForest forest;
  EXPECT_THROW(forest.load(in), std::runtime_error);
}

TEST(RandomForestLoad, RejectsNegativeHeaderValues) {
  for (const char* header : {
           "forest 2 -3 1\n",           // negative n_features
           "forest -2 3 1\n",           // negative n_classes
           "forest 2 3 -1\n",           // negative tree count
           "forest 4294967298 2 1\n",   // n_classes wraps to 2 through int
       }) {
    std::istringstream in(std::string(header) + kTreeFeature0);
    RandomForest forest;
    EXPECT_THROW(forest.load(in), std::runtime_error) << header;
  }
}

TEST(RandomForestLoad, RejectsImportancesShorterThanNFeatures) {
  // feature_importances() sums importances[0..n_features) per tree; a tree
  // carrying only 2 entries under a 3-feature forest would read past the
  // end.
  std::istringstream in(std::string("forest 2 3 1\n") + kTreeFeature0);
  RandomForest forest;
  EXPECT_THROW(forest.load(in), std::runtime_error);
}

TEST(RandomForest, RejectsBadConfig) {
  Matrix x(2, 1);
  const std::vector<int> y{0, 1};
  RandomForest forest;
  ForestParams params;
  params.n_estimators = 0;
  EXPECT_THROW(forest.fit(x, y, 2, {}, params), std::invalid_argument);
  EXPECT_THROW(forest.predict_proba(x.row(0)), std::logic_error);
}

}  // namespace
}  // namespace fhc::ml
