// CART decision tree: correctness on separable data, stopping rules,
// weighting semantics, probability outputs, importances.
#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "ml/matrix.hpp"

namespace fhc::ml {
namespace {

/// Two well-separated 2-D blobs of `n` points each (classes 0/1).
struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs make_blobs(std::size_t n, fhc::util::Rng& rng) {
  Blobs data{Matrix(2 * n, 2), {}};
  data.y.resize(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x.at(i, 0) = static_cast<float>(rng.gaussian() * 0.5 - 3.0);
    data.x.at(i, 1) = static_cast<float>(rng.gaussian() * 0.5);
    data.y[i] = 0;
    data.x.at(n + i, 0) = static_cast<float>(rng.gaussian() * 0.5 + 3.0);
    data.x.at(n + i, 1) = static_cast<float>(rng.gaussian() * 0.5);
    data.y[n + i] = 1;
  }
  return data;
}

TEST(DecisionTree, SeparatesLinearlySeparableBlobs) {
  fhc::util::Rng rng(1);
  const Blobs data = make_blobs(100, rng);
  DecisionTree tree;
  fhc::util::Rng fit_rng(2);
  tree.fit(data.x, data.y, 2, {}, TreeParams{}, fit_rng);

  int correct = 0;
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    correct += tree.predict(data.x.row(i)) == data.y[i] ? 1 : 0;
  }
  EXPECT_EQ(correct, 200);
}

TEST(DecisionTree, XorNeedsDepthTwo) {
  // XOR: not linearly separable, trivially solved by a depth-2 tree.
  Matrix x(4, 2);
  x.at(0, 0) = 0; x.at(0, 1) = 0;
  x.at(1, 0) = 0; x.at(1, 1) = 1;
  x.at(2, 0) = 1; x.at(2, 1) = 0;
  x.at(3, 0) = 1; x.at(3, 1) = 1;
  const std::vector<int> y{0, 1, 1, 0};
  DecisionTree tree;
  fhc::util::Rng rng(3);
  tree.fit(x, y, 2, {}, TreeParams{}, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tree.predict(x.row(i)), y[i]);
  }
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Matrix x(5, 1);
  for (int i = 0; i < 5; ++i) x.at(static_cast<std::size_t>(i), 0) = static_cast<float>(i);
  const std::vector<int> y{0, 0, 0, 0, 0};
  DecisionTree tree;
  fhc::util::Rng rng(4);
  tree.fit(x, y, 1, {}, TreeParams{}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 0);
}

TEST(DecisionTree, MaxDepthLimitsGrowth) {
  fhc::util::Rng rng(5);
  const Blobs data = make_blobs(200, rng);
  TreeParams params;
  params.max_depth = 1;
  DecisionTree tree;
  fhc::util::Rng fit_rng(6);
  tree.fit(data.x, data.y, 2, {}, params, fit_rng);
  EXPECT_LE(tree.depth(), 1);
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, MinSamplesSplitStopsEarly) {
  fhc::util::Rng rng(7);
  const Blobs data = make_blobs(50, rng);
  TreeParams params;
  params.min_samples_split = 1000;  // larger than the dataset
  DecisionTree tree;
  fhc::util::Rng fit_rng(8);
  tree.fit(data.x, data.y, 2, {}, params, fit_rng);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, MinSamplesLeafIsRespected) {
  // With min_samples_leaf = 40 of 80 samples, only the midpoint split is
  // admissible; the tree can still separate the blobs.
  fhc::util::Rng rng(9);
  const Blobs data = make_blobs(40, rng);
  TreeParams params;
  params.min_samples_leaf = 40;
  DecisionTree tree;
  fhc::util::Rng fit_rng(10);
  tree.fit(data.x, data.y, 2, {}, params, fit_rng);
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, AccumulateProbaAddsLeafDistribution) {
  // accumulate_proba is the allocation-free primitive: it ADDS this
  // tree's leaf distribution into the caller's accumulator (what the
  // forest's nested reference path and the FlatForest plan both build on).
  fhc::util::Rng rng(21);
  const Blobs data = make_blobs(40, rng);
  DecisionTree tree;
  fhc::util::Rng fit_rng(22);
  tree.fit(data.x, data.y, 2, {}, TreeParams{}, fit_rng);
  const auto row = data.x.row(3);
  const std::vector<double> proba = tree.predict_proba(row);
  std::vector<double> acc(2, 0.25);
  tree.accumulate_proba(row, acc);
  tree.accumulate_proba(row, acc);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(acc[c], 0.25 + proba[c] + proba[c]);
  }
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  fhc::util::Rng rng(11);
  const Blobs data = make_blobs(60, rng);
  DecisionTree tree;
  fhc::util::Rng fit_rng(12);
  tree.fit(data.x, data.y, 2, {}, TreeParams{}, fit_rng);
  for (std::size_t i = 0; i < data.x.rows(); i += 7) {
    const auto proba = tree.predict_proba(data.x.row(i));
    EXPECT_NEAR(std::accumulate(proba.begin(), proba.end(), 0.0), 1.0, 1e-6);
    for (const double p : proba) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(DecisionTree, SampleWeightActsLikeDuplication) {
  // A node's majority flips when the minority samples carry enough weight.
  Matrix x(3, 1);
  x.at(0, 0) = 0.0f;
  x.at(1, 0) = 0.0f;
  x.at(2, 0) = 0.0f;  // identical feature: tree must be a single leaf
  const std::vector<int> y{0, 0, 1};
  const std::vector<double> weight{1.0, 1.0, 10.0};
  DecisionTree tree;
  fhc::util::Rng rng(13);
  tree.fit(x, y, 2, weight, TreeParams{}, rng);
  EXPECT_EQ(tree.predict(x.row(0)), 1) << "weighted minority must win";
}

TEST(DecisionTree, ImportancesConcentrateOnInformativeFeature) {
  // Feature 0 informative, feature 1 constant noise.
  fhc::util::Rng rng(14);
  const Blobs data = make_blobs(100, rng);
  DecisionTree tree;
  fhc::util::Rng fit_rng(15);
  tree.fit(data.x, data.y, 2, {}, TreeParams{}, fit_rng);
  const auto& importances = tree.feature_importances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], importances[1]);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(DecisionTree, DeterministicGivenSeed) {
  fhc::util::Rng rng(16);
  const Blobs data = make_blobs(80, rng);
  TreeParams params;
  params.max_features = 1;  // force randomized feature choice
  DecisionTree a;
  DecisionTree b;
  fhc::util::Rng rng_a(17);
  fhc::util::Rng rng_b(17);
  a.fit(data.x, data.y, 2, {}, params, rng_a);
  b.fit(data.x, data.y, 2, {}, params, rng_b);
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    EXPECT_EQ(a.predict(data.x.row(i)), b.predict(data.x.row(i)));
  }
}

TEST(DecisionTree, RejectsBadInput) {
  Matrix x(2, 1);
  DecisionTree tree;
  fhc::util::Rng rng(18);
  EXPECT_THROW(tree.fit(x, {0}, 1, {}, TreeParams{}, rng), std::invalid_argument);
  EXPECT_THROW(tree.fit(x, {0, 5}, 2, {}, TreeParams{}, rng), std::invalid_argument);
  EXPECT_THROW(tree.fit(x, {0, -2}, 2, {}, TreeParams{}, rng), std::invalid_argument);
  EXPECT_THROW(tree.predict_proba(x.row(0)), std::logic_error);  // unfitted
}

// "tree n_classes depth node_count pool_size importance_count", then one
// node per line (feature threshold left right proba_offset), the leaf
// probability pool and the importances. A root split on feature 0 with two
// leaves:
constexpr const char* kValidTreeText =
    "tree 2 1 3 4 2\n"
    "0 0.5 1 2 -1\n"
    "-1 0 -1 -1 0\n"
    "-1 0 -1 -1 2\n"
    "1 0 0.25 0.75\n"
    "0.5 0.5\n";

TEST(DecisionTreeLoad, AcceptsWellFormedModelText) {
  std::istringstream in(kValidTreeText);
  DecisionTree tree;
  tree.load(in);
  EXPECT_EQ(tree.n_classes(), 2);
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.max_feature_used(), 0);
  const std::vector<float> left_row{0.2f};
  const std::vector<float> right_row{0.9f};
  EXPECT_EQ(tree.predict(left_row), 0);
  EXPECT_EQ(tree.predict(right_row), 1);
}

TEST(DecisionTreeLoad, RejectsNegativeFeatureOnInteriorNode) {
  // Same shape, but the interior node claims feature -2: predict_proba
  // would index row[-2] out of bounds.
  std::istringstream in(
      "tree 2 1 3 4 2\n"
      "-2 0.5 1 2 -1\n"
      "-1 0 -1 -1 0\n"
      "-1 0 -1 -1 2\n"
      "1 0 0.25 0.75\n"
      "0.5 0.5\n");
  DecisionTree tree;
  EXPECT_THROW(tree.load(in), std::runtime_error);
}

TEST(DecisionTreeLoad, RejectsBackwardChildLinks) {
  // build_node always emits children after their parent, so a link at or
  // before the node's own index is a crafted cycle — predict_proba would
  // spin forever on it.
  for (const char* nodes : {
           "0 0.5 0 0 -1\n",  // self-loop at the root
           "0 0.5 1 0 -1\n",  // right child points back at the root
       }) {
    std::istringstream in(std::string("tree 2 1 2 2 1\n") + nodes +
                          "-1 0 -1 -1 0\n"
                          "0.5 0.5\n"
                          "0\n");
    DecisionTree tree;
    EXPECT_THROW(tree.load(in), std::runtime_error) << nodes;
  }
}

TEST(DecisionTreeLoad, RejectsNegativeHeaderCounts) {
  for (const char* text : {
           "tree 2 1 -3 4 2\n",   // negative node count
           "tree 2 1 3 -4 2\n",   // negative pool size
           "tree 2 1 3 4 -2\n",   // negative importance count
           "tree 2 -1 3 4 2\n",   // negative depth
           "tree -2 1 3 4 2\n",   // negative class count
       }) {
    std::istringstream in(text);
    DecisionTree tree;
    EXPECT_THROW(tree.load(in), std::runtime_error) << text;
  }
}

TEST(DecisionTreeLoad, MaxFeatureUsedIgnoresLeaves) {
  std::istringstream in(kValidTreeText);
  DecisionTree tree;
  tree.load(in);
  // Leaves carry feature == -1; only the root's feature 0 counts.
  EXPECT_EQ(tree.max_feature_used(), 0);
}

TEST(DecisionTree, EntropyCriterionAlsoSeparates) {
  fhc::util::Rng rng(19);
  const Blobs data = make_blobs(60, rng);
  TreeParams params;
  params.criterion = Criterion::kEntropy;
  DecisionTree tree;
  fhc::util::Rng fit_rng(20);
  tree.fit(data.x, data.y, 2, {}, params, fit_rng);
  int correct = 0;
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    correct += tree.predict(data.x.row(i)) == data.y[i] ? 1 : 0;
  }
  EXPECT_EQ(correct, 120);
}

}  // namespace
}  // namespace fhc::ml
