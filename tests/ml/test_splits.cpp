// Stratified and two-phase splitting (the paper's evaluation protocol).
#include "ml/splits.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace fhc::ml {
namespace {

std::vector<int> make_labels(const std::vector<std::pair<int, int>>& class_counts) {
  std::vector<int> labels;
  for (const auto& [label, count] : class_counts) {
    for (int i = 0; i < count; ++i) labels.push_back(label);
  }
  return labels;
}

TEST(StratifiedSplit, PartitionsAllSamples) {
  const auto labels = make_labels({{0, 10}, {1, 20}, {2, 5}});
  fhc::util::Rng rng(1);
  const SampleSplit split = stratified_split(labels, 0.4, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), labels.size());

  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), labels.size()) << "no index may appear twice";
}

TEST(StratifiedSplit, PerClassProportions) {
  const auto labels = make_labels({{0, 100}, {1, 50}, {2, 10}});
  fhc::util::Rng rng(2);
  const SampleSplit split = stratified_split(labels, 0.4, rng);
  std::map<int, int> test_counts;
  for (const std::size_t i : split.test) test_counts[labels[i]] += 1;
  EXPECT_EQ(test_counts[0], 40);
  EXPECT_EQ(test_counts[1], 20);
  EXPECT_EQ(test_counts[2], 4);
}

TEST(StratifiedSplit, RoundHalfUpMatchesPaperReconstruction) {
  // A class of 25 samples at 40% test -> support 10 (paper: Augustus).
  const auto labels = make_labels({{0, 25}});
  fhc::util::Rng rng(3);
  EXPECT_EQ(stratified_split(labels, 0.4, rng).test.size(), 10u);
  // A class of 3 -> round(1.2) = 1 (paper: CapnProto support 1).
  const auto three = make_labels({{0, 3}});
  fhc::util::Rng rng2(3);
  EXPECT_EQ(stratified_split(three, 0.4, rng2).test.size(), 1u);
}

TEST(StratifiedSplit, KeepsBothSidesNonEmptyForTwoPlus) {
  const auto labels = make_labels({{0, 2}});
  fhc::util::Rng rng(4);
  const SampleSplit split = stratified_split(labels, 0.9, rng);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.test.size(), 1u);
}

TEST(StratifiedSplit, DeterministicGivenRngState) {
  const auto labels = make_labels({{0, 30}, {1, 30}});
  fhc::util::Rng rng1(5);
  fhc::util::Rng rng2(5);
  const SampleSplit a = stratified_split(labels, 0.4, rng1);
  const SampleSplit b = stratified_split(labels, 0.4, rng2);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

TEST(StratifiedSplit, RejectsBadInput) {
  fhc::util::Rng rng(6);
  EXPECT_THROW(stratified_split({0, -1, 2}, 0.4, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split({0, 1}, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split({0, 1}, -0.1, rng), std::invalid_argument);
}

TEST(ClassLevelSplit, PicksRequestedFraction) {
  fhc::util::Rng rng(7);
  const auto unknown = class_level_split(92, 0.2, rng);
  EXPECT_EQ(unknown.size(), 18u);  // round(0.2 * 92)
  for (const std::size_t c : unknown) EXPECT_LT(c, 92u);
  EXPECT_TRUE(std::is_sorted(unknown.begin(), unknown.end()));
}

TEST(ClassLevelSplit, DifferentSeedsDifferentPools) {
  fhc::util::Rng rng1(8);
  fhc::util::Rng rng2(9);
  EXPECT_NE(class_level_split(92, 0.2, rng1), class_level_split(92, 0.2, rng2));
}

TEST(TwoPhaseSplit, UnknownClassesOnlyInTest) {
  const auto labels = make_labels({{0, 10}, {1, 10}, {2, 10}, {3, 10}, {4, 10}});
  fhc::util::Rng rng(10);
  const TwoPhaseSplit split = two_phase_split(labels, 5, 0.2, 0.4, rng);

  int unknown_classes = 0;
  for (const bool u : split.class_is_unknown) unknown_classes += u ? 1 : 0;
  EXPECT_EQ(unknown_classes, 1);  // round(0.2 * 5)

  for (const std::size_t i : split.train) {
    EXPECT_FALSE(split.class_is_unknown[static_cast<std::size_t>(labels[i])])
        << "unknown-pool sample leaked into training";
  }
  EXPECT_EQ(split.unknown_test_count, 10u);
  EXPECT_EQ(split.train.size() + split.test.size(), labels.size());
}

TEST(TwoPhaseSplit, PinnedUnknownListIsRespected) {
  const auto labels = make_labels({{0, 10}, {1, 10}, {2, 10}});
  fhc::util::Rng rng(11);
  const TwoPhaseSplit split = two_phase_split(labels, 3, 0.2, 0.4, rng, {2});
  EXPECT_FALSE(split.class_is_unknown[0]);
  EXPECT_FALSE(split.class_is_unknown[1]);
  EXPECT_TRUE(split.class_is_unknown[2]);
  EXPECT_EQ(split.unknown_test_count, 10u);
}

TEST(TwoPhaseSplit, PaperScaleCounts) {
  // Reproduce the paper's numbers: 92 classes, 19 pinned unknown classes
  // with 852 samples, 4481 known samples -> 2688 train / 2645 test.
  std::vector<int> labels;
  std::vector<int> pinned;
  // Simplified: 73 known classes of 61-62 samples + 19 unknown matching 852.
  int cid = 0;
  for (int c = 0; c < 73; ++c, ++cid) {
    const int n = c < 28 ? 62 : 61;  // 28*62 + 45*61 = 4481
    for (int i = 0; i < n; ++i) labels.push_back(cid);
  }
  for (int c = 0; c < 19; ++c, ++cid) {
    const int n = c == 0 ? 96 : 42;  // 96 + 18*42 = 852
    for (int i = 0; i < n; ++i) labels.push_back(cid);
    pinned.push_back(cid);
  }
  ASSERT_EQ(labels.size(), 5333u);

  fhc::util::Rng rng(12);
  const TwoPhaseSplit split = two_phase_split(labels, 92, 0.2, 0.4, rng, pinned);
  EXPECT_EQ(split.unknown_test_count, 852u);
  EXPECT_EQ(split.train.size() + split.test.size(), 5333u);
  // Stratified rounding keeps totals within a few samples of the paper.
  EXPECT_NEAR(static_cast<double>(split.train.size()), 2688.0, 40.0);
  EXPECT_NEAR(static_cast<double>(split.test.size()), 2645.0, 40.0);
}

TEST(TwoPhaseSplit, RejectsBadClassIds) {
  fhc::util::Rng rng(13);
  EXPECT_THROW(two_phase_split({0, 5}, 3, 0.2, 0.4, rng), std::invalid_argument);
  EXPECT_THROW(two_phase_split({0, 1}, 3, 0.2, 0.4, rng, {7}), std::invalid_argument);
}

}  // namespace
}  // namespace fhc::ml
