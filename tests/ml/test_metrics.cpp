// Classification metrics and the sklearn-style report (paper Table 4).
#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "ml/dataset.hpp"

namespace fhc::ml {
namespace {

TEST(ClassificationReport, PerfectPredictions) {
  const std::vector<int> y{0, 1, 2, 0, 1, 2};
  const auto report = classification_report(y, y, {"a", "b", "c"});
  EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.micro.f1, 1.0);
  EXPECT_DOUBLE_EQ(report.macro.f1, 1.0);
  EXPECT_DOUBLE_EQ(report.weighted.f1, 1.0);
  for (const auto& m : report.per_class) {
    EXPECT_DOUBLE_EQ(m.precision, 1.0);
    EXPECT_DOUBLE_EQ(m.recall, 1.0);
    EXPECT_EQ(m.support, 2u);
  }
}

TEST(ClassificationReport, HandComputedBinaryCase) {
  // y_true: 0 0 0 1 1 ; y_pred: 0 0 1 1 0
  // class 0: TP=2 FP=1 FN=1 -> P=2/3 R=2/3 F1=2/3
  // class 1: TP=1 FP=1 FN=1 -> P=1/2 R=1/2 F1=1/2
  const std::vector<int> y_true{0, 0, 0, 1, 1};
  const std::vector<int> y_pred{0, 0, 1, 1, 0};
  const auto report = classification_report(y_true, y_pred, {"neg", "pos"});

  ASSERT_EQ(report.per_class.size(), 2u);
  const auto& neg = report.per_class[0];
  EXPECT_EQ(neg.name, "neg");
  EXPECT_NEAR(neg.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(neg.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(neg.f1, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(neg.support, 3u);

  const auto& pos = report.per_class[1];
  EXPECT_NEAR(pos.precision, 0.5, 1e-12);
  EXPECT_NEAR(pos.recall, 0.5, 1e-12);

  // micro = accuracy = 3/5; macro = (2/3 + 1/2)/2; weighted by support.
  EXPECT_NEAR(report.micro.f1, 0.6, 1e-12);
  EXPECT_NEAR(report.macro.f1, (2.0 / 3.0 + 0.5) / 2.0, 1e-12);
  EXPECT_NEAR(report.weighted.f1, (3 * (2.0 / 3.0) + 2 * 0.5) / 5.0, 1e-12);
}

TEST(ClassificationReport, MicroEqualsAccuracyInMultiClass) {
  const std::vector<int> y_true{0, 1, 2, 2, 1, 0, 2};
  const std::vector<int> y_pred{0, 2, 2, 1, 1, 0, 0};
  const auto report = classification_report(y_true, y_pred, {"a", "b", "c"});
  EXPECT_DOUBLE_EQ(report.micro.precision, report.accuracy);
  EXPECT_DOUBLE_EQ(report.micro.recall, report.accuracy);
  EXPECT_DOUBLE_EQ(report.micro.f1, report.accuracy);
}

TEST(ClassificationReport, UnknownLabelSortsFirstAsMinusOne) {
  const std::vector<int> y_true{kUnknownLabel, 0, kUnknownLabel, 1};
  const std::vector<int> y_pred{kUnknownLabel, 0, 1, 1};
  const auto report = classification_report(y_true, y_pred, {"Augustus", "BLAT"});
  ASSERT_GE(report.per_class.size(), 3u);
  EXPECT_EQ(report.per_class[0].name, "-1");
  EXPECT_EQ(report.per_class[0].support, 2u);
  EXPECT_EQ(report.per_class[1].name, "Augustus");
}

TEST(ClassificationReport, ZeroDivisionYieldsZero) {
  // Class 1 never predicted and never true -> not in report;
  // class 2 true but never predicted -> P=0 (no predictions), R=0? No:
  // R = 0 because TP=0, FN>0; P = 0 by the zero-division rule.
  const std::vector<int> y_true{0, 0, 2};
  const std::vector<int> y_pred{0, 0, 0};
  const auto report = classification_report(y_true, y_pred, {"a", "b", "c"});
  bool found_c = false;
  for (const auto& m : report.per_class) {
    if (m.name == "c") {
      found_c = true;
      EXPECT_DOUBLE_EQ(m.precision, 0.0);
      EXPECT_DOUBLE_EQ(m.recall, 0.0);
      EXPECT_DOUBLE_EQ(m.f1, 0.0);
    }
  }
  EXPECT_TRUE(found_c);
}

TEST(ClassificationReport, PredictedOnlyClassAppears) {
  // sklearn includes labels that occur only in y_pred (support 0).
  const std::vector<int> y_true{0, 0};
  const std::vector<int> y_pred{0, 1};
  const auto report = classification_report(y_true, y_pred, {"a", "b"});
  bool found_b = false;
  for (const auto& m : report.per_class) {
    if (m.name == "b") {
      found_b = true;
      EXPECT_EQ(m.support, 0u);
      EXPECT_DOUBLE_EQ(m.precision, 0.0);  // 1 FP, 0 TP
    }
  }
  EXPECT_TRUE(found_b);
}

TEST(ClassificationReport, RendersPaperStyleTable) {
  const std::vector<int> y_true{kUnknownLabel, 0, 1, 1};
  const std::vector<int> y_pred{kUnknownLabel, 0, 1, 0};
  const auto report = classification_report(y_true, y_pred, {"BCFtools", "Velvet"});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("Class"), std::string::npos);
  EXPECT_NE(text.find("Precision"), std::string::npos);
  EXPECT_NE(text.find("f1-Score"), std::string::npos);
  EXPECT_NE(text.find("Support"), std::string::npos);
  EXPECT_NE(text.find("-1"), std::string::npos);
  EXPECT_NE(text.find("BCFtools"), std::string::npos);
  EXPECT_NE(text.find("micro avg"), std::string::npos);
  EXPECT_NE(text.find("macro avg"), std::string::npos);
  EXPECT_NE(text.find("weighted avg"), std::string::npos);
}

TEST(ClassificationReport, RejectsSizeMismatch) {
  EXPECT_THROW(classification_report({0, 1}, {0}, {}), std::invalid_argument);
}

TEST(F1Helpers, AgreeWithFullReport) {
  const std::vector<int> y_true{0, 0, 1, 1, 2};
  const std::vector<int> y_pred{0, 1, 1, 1, 0};
  const auto report = classification_report(y_true, y_pred, {});
  EXPECT_DOUBLE_EQ(macro_f1(y_true, y_pred), report.macro.f1);
  EXPECT_DOUBLE_EQ(micro_f1(y_true, y_pred), report.micro.f1);
  EXPECT_DOUBLE_EQ(weighted_f1(y_true, y_pred), report.weighted.f1);
}

TEST(F1Helpers, PaperHeadlineShapeIsRepresentable) {
  // Sanity: the three averages are independent quantities; build a case
  // where macro < micro (large easy class + small hard class).
  std::vector<int> y_true;
  std::vector<int> y_pred;
  for (int i = 0; i < 98; ++i) {
    y_true.push_back(0);
    y_pred.push_back(0);
  }
  y_true.push_back(1);
  y_pred.push_back(0);
  y_true.push_back(1);
  y_pred.push_back(1);
  EXPECT_GT(micro_f1(y_true, y_pred), macro_f1(y_true, y_pred));
}

}  // namespace
}  // namespace fhc::ml
