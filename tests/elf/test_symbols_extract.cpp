// The `nm`(1) equivalent: classification, filtering, ordering.
#include "elf/symbols_extract.hpp"

#include <gtest/gtest.h>

#include "elf/elf_writer.hpp"

namespace fhc::elf {
namespace {

ElfSpec suite_spec() {
  ElfSpec spec;
  spec.text.assign(64, 0x90);
  spec.rodata.assign(32, 0x00);
  spec.comment = "GCC: (GNU) 10.3.0";
  spec.symbols.push_back({"zeta_fn", SymbolSection::kText, kStbGlobal, kSttFunc, 0, 8});
  spec.symbols.push_back({"alpha_fn", SymbolSection::kText, kStbGlobal, kSttFunc, 8, 8});
  spec.symbols.push_back({"weak_fn", SymbolSection::kText, kStbWeak, kSttFunc, 16, 8});
  spec.symbols.push_back({"data_obj", SymbolSection::kRodata, kStbGlobal, kSttObject, 0, 4});
  spec.symbols.push_back({"local_fn", SymbolSection::kText, kStbLocal, kSttFunc, 24, 8});
  return spec;
}

TEST(NmGlobalDefined, FiltersAndSorts) {
  const auto image = write_elf(suite_spec());
  const ElfReader reader(image);
  const auto entries = nm_global_defined(reader);

  // local_fn excluded; 4 globals/weaks remain, sorted by name.
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].name, "alpha_fn");
  EXPECT_EQ(entries[1].name, "data_obj");
  EXPECT_EQ(entries[2].name, "weak_fn");
  EXPECT_EQ(entries[3].name, "zeta_fn");
}

TEST(NmGlobalDefined, ClassifiesSections) {
  const auto image = write_elf(suite_spec());
  const ElfReader reader(image);
  for (const auto& entry : nm_global_defined(reader)) {
    if (entry.name == "alpha_fn" || entry.name == "zeta_fn") {
      EXPECT_EQ(entry.letter, 'T') << entry.name;
    } else if (entry.name == "weak_fn") {
      EXPECT_EQ(entry.letter, 'W');
    } else if (entry.name == "data_obj") {
      EXPECT_EQ(entry.letter, 'R');  // .rodata: alloc, not writable, not exec
    }
  }
}

TEST(GlobalTextSymbolsText, OnlyTextAndWeakJoined) {
  const auto image = write_elf(suite_spec());
  const std::string text = global_text_symbols_text(image);
  EXPECT_EQ(text, "alpha_fn\nweak_fn\nzeta_fn\n");
}

TEST(GlobalTextSymbolsText, EmptyForStripped) {
  ElfSpec spec = suite_spec();
  spec.stripped = true;
  const auto image = write_elf(spec);
  EXPECT_TRUE(global_text_symbols_text(image).empty());
}

TEST(GlobalTextSymbolsText, EmptyForNonElf) {
  const std::vector<std::uint8_t> junk{'n', 'o', 't', ' ', 'e', 'l', 'f'};
  EXPECT_TRUE(global_text_symbols_text(junk).empty());
}

TEST(HasSymbolTable, DetectsPresenceAndAbsence) {
  EXPECT_TRUE(has_symbol_table(write_elf(suite_spec())));
  ElfSpec stripped = suite_spec();
  stripped.stripped = true;
  EXPECT_FALSE(has_symbol_table(write_elf(stripped)));
  const std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_FALSE(has_symbol_table(junk));
}

TEST(ClassifySymbol, UndefinedAndAbsolute) {
  Symbol sym;
  sym.shndx = kShnUndef;
  EXPECT_EQ(classify_symbol(sym, nullptr), 'U');
  sym.shndx = kShnAbs;
  EXPECT_EQ(classify_symbol(sym, nullptr), 'A');
}

TEST(ClassifySymbol, SectionFlagCases) {
  Symbol sym;
  sym.shndx = 1;
  sym.bind = kStbGlobal;

  Elf64_Shdr text{};
  text.sh_type = kShtProgbits;
  text.sh_flags = kShfAlloc | kShfExecinstr;
  EXPECT_EQ(classify_symbol(sym, &text), 'T');

  Elf64_Shdr data{};
  data.sh_type = kShtProgbits;
  data.sh_flags = kShfAlloc | kShfWrite;
  EXPECT_EQ(classify_symbol(sym, &data), 'D');

  Elf64_Shdr rodata{};
  rodata.sh_type = kShtProgbits;
  rodata.sh_flags = kShfAlloc;
  EXPECT_EQ(classify_symbol(sym, &rodata), 'R');

  Elf64_Shdr bss{};
  bss.sh_type = kShtNobits;
  bss.sh_flags = kShfAlloc | kShfWrite;
  EXPECT_EQ(classify_symbol(sym, &bss), 'B');

  sym.bind = kStbWeak;
  EXPECT_EQ(classify_symbol(sym, &text), 'W');
}

TEST(GlobalTextSymbolsText, DuplicateNamesKeptOnce) {
  // Two symbols with the same name (legal in ELF): nm prints both; our
  // extractor keeps both lines as well — verify deterministic output.
  ElfSpec spec;
  spec.text.assign(32, 0x90);
  spec.symbols.push_back({"dup_fn", SymbolSection::kText, kStbGlobal, kSttFunc, 0, 8});
  spec.symbols.push_back({"dup_fn", SymbolSection::kText, kStbGlobal, kSttFunc, 8, 8});
  const auto image = write_elf(spec);
  EXPECT_EQ(global_text_symbols_text(image), "dup_fn\ndup_fn\n");
}

}  // namespace
}  // namespace fhc::elf
