// Failure injection: the reader must never crash or read out of bounds on
// corrupt input — every malformed image either parses or throws ElfError.
// (The feature extractors sit in a job-submission path; hostile input is
// the threat model, per the paper's security framing.)
#include <gtest/gtest.h>

#include "corpus/app_spec.hpp"
#include "corpus/synth_app.hpp"
#include "core/features.hpp"
#include "elf/elf_reader.hpp"
#include "elf/strings_extract.hpp"
#include "elf/symbols_extract.hpp"
#include <cstring>

#include "util/rng.hpp"

namespace fhc::elf {
namespace {

std::vector<std::uint8_t> sample_image(std::uint64_t seed) {
  const corpus::AppClassSpec* spec =
      corpus::find_class(corpus::paper_app_classes(), "HMMER");
  corpus::SampleSynthesizer synth(*spec, seed);
  return synth.build(0, 0);
}

/// Attempt a full parse + both extractors; returns true on clean success.
bool try_full_parse(std::span<const std::uint8_t> image) {
  try {
    const ElfReader reader(image);
    (void)reader.symbols();
    (void)reader.has_symtab();
    for (const auto& section : reader.sections()) (void)section.name.size();
    return true;
  } catch (const ElfError&) {
    return false;  // clean rejection is acceptable
  }
}

class TruncationSweep : public ::testing::TestWithParam<double> {};

TEST_P(TruncationSweep, TruncatedImagesNeverCrash) {
  auto image = sample_image(1);
  const auto cut = static_cast<std::size_t>(GetParam() * static_cast<double>(image.size()));
  image.resize(cut);
  (void)try_full_parse(image);  // must not crash/UB; throwing is fine
  // The high-level extractors must be total functions.
  (void)strings_text(image);
  (void)global_text_symbols_text(image);
  (void)has_symbol_table(image);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationSweep,
                         ::testing::Values(0.0, 0.001, 0.01, 0.2, 0.5, 0.9, 0.999));

class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionSweep, RandomByteFlipsNeverCrash) {
  auto image = sample_image(2);
  fhc::util::Rng rng(GetParam());
  // Flip 64 random bytes, biased toward the header region where offsets
  // and counts live.
  for (int i = 0; i < 64; ++i) {
    const std::size_t pos = rng.bernoulli(0.5)
                                ? static_cast<std::size_t>(rng.next_below(256))
                                : static_cast<std::size_t>(rng.next_below(image.size()));
    image[pos % image.size()] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  (void)try_full_parse(image);
  (void)core::extract_feature_hashes(image);  // end-to-end feature path
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Robustness, SectionHeaderOffsetBeyondFile) {
  auto image = sample_image(3);
  // e_shoff at offset 40 (8 bytes): point past the end.
  const std::uint64_t bogus = image.size() + 4096;
  std::memcpy(image.data() + 40, &bogus, sizeof(bogus));
  EXPECT_FALSE(try_full_parse(image));
}

TEST(Robustness, HugeSectionCount) {
  auto image = sample_image(4);
  // e_shnum at offset 60 (2 bytes).
  const std::uint16_t bogus = 0xffff;
  std::memcpy(image.data() + 60, &bogus, sizeof(bogus));
  EXPECT_FALSE(try_full_parse(image));
}

TEST(Robustness, ExtractorsHandleArbitraryBytes) {
  fhc::util::Rng rng(9);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint8_t> junk(static_cast<std::size_t>(rng.next_below(5000)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng() & 0xff);
    (void)strings_text(junk);
    (void)global_text_symbols_text(junk);
    (void)core::extract_feature_hashes(junk);
  }
  SUCCEED();
}

}  // namespace
}  // namespace fhc::elf
