// The `strings`(1) equivalent.
#include "elf/strings_extract.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fhc::elf {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

std::vector<std::uint8_t> from_string(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(ExtractStrings, FindsRunsOfFourOrMore) {
  const auto data = bytes({'a', 'b', 'c', 'd', 0, 'x', 'y', 0});
  const auto runs = extract_strings(data);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], "abcd");
}

TEST(ExtractStrings, RespectsMinLength) {
  const auto data = from_string("abc");
  EXPECT_TRUE(extract_strings(data).empty());
  StringsOptions opts;
  opts.min_length = 3;
  const auto runs = extract_strings(data, opts);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], "abc");
}

TEST(ExtractStrings, RunAtBufferEndIsEmitted) {
  const auto data = from_string("tail-run");
  const auto runs = extract_strings(data);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], "tail-run");
}

TEST(ExtractStrings, SplitsOnNonPrintable) {
  const auto data = bytes({'f', 'i', 'r', 's', 't', 0x01, 's', 'e', 'c', 'o', 'n', 'd'});
  const auto runs = extract_strings(data);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], "first");
  EXPECT_EQ(runs[1], "second");
}

TEST(ExtractStrings, SpacesAndPunctuationArePrintable) {
  const auto data = from_string("usage: %s [options] <input>");
  const auto runs = extract_strings(data);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], "usage: %s [options] <input>");
}

TEST(ExtractStrings, HighBitBytesTerminateRuns) {
  const auto data = bytes({'a', 'b', 'c', 'd', 0x80, 0xff, 'e', 'f', 'g', 'h'});
  const auto runs = extract_strings(data);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], "abcd");
  EXPECT_EQ(runs[1], "efgh");
}

TEST(ExtractStrings, EmptyInput) {
  EXPECT_TRUE(extract_strings({}).empty());
  EXPECT_TRUE(strings_text({}).empty());
}

TEST(StringsText, JoinsWithNewlines) {
  const auto data = bytes({'o', 'n', 'e', '1', 0, 't', 'w', 'o', '2', 0});
  EXPECT_EQ(strings_text(data), "one1\ntwo2\n");
}

TEST(StringsText, DeterministicOrderMatchesFileOrder) {
  const auto data = bytes({'z', 'z', 'z', 'z', 0, 'a', 'a', 'a', 'a', 0});
  EXPECT_EQ(strings_text(data), "zzzz\naaaa\n");  // file order, not sorted
}

}  // namespace
}  // namespace fhc::elf
