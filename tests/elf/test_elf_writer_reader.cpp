// Writer/reader roundtrip and defensive parsing of malformed images.
#include <gtest/gtest.h>

#include "elf/elf_reader.hpp"
#include "elf/elf_writer.hpp"

namespace fhc::elf {
namespace {

ElfSpec sample_spec() {
  ElfSpec spec;
  spec.text = {0x55, 0x48, 0x89, 0xe5, 0x90, 0x90, 0x5d, 0xc3,
               0x55, 0x48, 0x89, 0xe5, 0x31, 0xc0, 0x5d, 0xc3};
  spec.rodata = {'h', 'e', 'l', 'l', 'o', '\0', 1, 2, 3, 4};
  spec.comment = "GCC: (GNU) 10.3.0";
  spec.symbols.push_back({"main", SymbolSection::kText, kStbGlobal, kSttFunc, 0, 8});
  spec.symbols.push_back({"helper", SymbolSection::kText, kStbGlobal, kSttFunc, 8, 8});
  spec.symbols.push_back({"greeting", SymbolSection::kRodata, kStbGlobal, kSttObject, 0, 6});
  spec.symbols.push_back({"local_fn", SymbolSection::kText, kStbLocal, kSttFunc, 0, 4});
  return spec;
}

TEST(ElfWriter, ProducesValidMagic) {
  const auto image = write_elf(sample_spec());
  ASSERT_GE(image.size(), 64u);
  EXPECT_TRUE(ElfReader::looks_like_elf(image));
  EXPECT_EQ(image[0], 0x7f);
  EXPECT_EQ(image[1], 'E');
  EXPECT_EQ(image[2], 'L');
  EXPECT_EQ(image[3], 'F');
}

TEST(ElfWriter, RoundTripsSections) {
  const auto image = write_elf(sample_spec());
  const ElfReader reader(image);

  const auto text = reader.section_by_name(".text");
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(text->header.sh_type, kShtProgbits);
  EXPECT_TRUE(text->header.sh_flags & kShfExecinstr);
  EXPECT_EQ(text->content.size(), 16u);
  EXPECT_EQ(text->content[0], 0x55);

  const auto rodata = reader.section_by_name(".rodata");
  ASSERT_TRUE(rodata.has_value());
  EXPECT_FALSE(rodata->header.sh_flags & kShfExecinstr);
  EXPECT_EQ(rodata->content.size(), 10u);

  const auto comment = reader.section_by_name(".comment");
  ASSERT_TRUE(comment.has_value());
  const std::string text_content(comment->content.begin(), comment->content.end());
  EXPECT_NE(text_content.find("GCC"), std::string::npos);
}

TEST(ElfWriter, RoundTripsSymbols) {
  const auto image = write_elf(sample_spec());
  const ElfReader reader(image);
  ASSERT_TRUE(reader.has_symtab());

  const auto symbols = reader.symbols();
  // null symbol + 4 declared.
  ASSERT_EQ(symbols.size(), 5u);

  bool found_main = false;
  bool found_local = false;
  bool found_object = false;
  for (const Symbol& sym : symbols) {
    if (sym.name == "main") {
      found_main = true;
      EXPECT_EQ(sym.bind, kStbGlobal);
      EXPECT_EQ(sym.type, kSttFunc);
      EXPECT_EQ(sym.size, 8u);
    }
    if (sym.name == "local_fn") {
      found_local = true;
      EXPECT_EQ(sym.bind, kStbLocal);
    }
    if (sym.name == "greeting") {
      found_object = true;
      EXPECT_EQ(sym.type, kSttObject);
    }
  }
  EXPECT_TRUE(found_main);
  EXPECT_TRUE(found_local);
  EXPECT_TRUE(found_object);
}

TEST(ElfWriter, LocalSymbolsPrecedeGlobals) {
  const auto image = write_elf(sample_spec());
  const ElfReader reader(image);
  const auto symbols = reader.symbols();
  bool seen_global = false;
  for (const Symbol& sym : symbols) {
    if (sym.bind == kStbGlobal) seen_global = true;
    if (seen_global) {
      EXPECT_NE(sym.bind, kStbLocal) << "local after global";
    }
  }
}

TEST(ElfWriter, StrippedImageHasNoSymtab) {
  ElfSpec spec = sample_spec();
  spec.stripped = true;
  const auto image = write_elf(spec);
  const ElfReader reader(image);
  EXPECT_FALSE(reader.has_symtab());
  EXPECT_TRUE(reader.symbols().empty());
  // But sections are intact.
  EXPECT_TRUE(reader.section_by_name(".text").has_value());
  EXPECT_TRUE(reader.section_by_name(".rodata").has_value());
}

TEST(ElfWriter, RejectsSymbolOutsideSection) {
  ElfSpec spec = sample_spec();
  spec.symbols.push_back({"overflow", SymbolSection::kText, kStbGlobal, kSttFunc,
                          100, 10});  // .text is 16 bytes
  EXPECT_THROW(write_elf(spec), std::invalid_argument);
}

TEST(ElfWriter, EmptySectionsAreAllowed) {
  ElfSpec spec;
  spec.comment = "empty";
  const auto image = write_elf(spec);
  const ElfReader reader(image);
  EXPECT_TRUE(reader.section_by_name(".text").has_value());
  EXPECT_EQ(reader.section_by_name(".text")->content.size(), 0u);
}

TEST(ElfReader, RejectsNonElf) {
  const std::vector<std::uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(ElfReader::looks_like_elf(junk));
  EXPECT_THROW(ElfReader{std::span<const std::uint8_t>(junk)}, ElfError);
}

TEST(ElfReader, RejectsTruncatedImage) {
  auto image = write_elf(sample_spec());
  // Cut the image in the middle of the section payloads: headers at the
  // end become unreachable.
  image.resize(image.size() / 2);
  EXPECT_THROW(ElfReader{std::span<const std::uint8_t>(image)}, ElfError);
}

TEST(ElfReader, RejectsCorruptShstrndx) {
  auto image = write_elf(sample_spec());
  // e_shstrndx lives at offset 62 (uint16).
  image[62] = 0xff;
  image[63] = 0xff;
  EXPECT_THROW(ElfReader{std::span<const std::uint8_t>(image)}, ElfError);
}

TEST(ElfReader, SectionEnumerationIncludesNull) {
  const auto image = write_elf(sample_spec());
  const ElfReader reader(image);
  ASSERT_FALSE(reader.sections().empty());
  EXPECT_EQ(reader.sections()[0].header.sh_type, kShtNull);
  EXPECT_EQ(reader.sections().size(), 7u);  // null,text,rodata,comment,symtab,strtab,shstrtab
}

TEST(ElfReader, HeaderFieldsAreConsistent) {
  const auto image = write_elf(sample_spec());
  const ElfReader reader(image);
  const Elf64_Ehdr& hdr = reader.header();
  EXPECT_EQ(hdr.e_type, kEtExec);
  EXPECT_EQ(hdr.e_machine, kEmX86_64);
  EXPECT_EQ(hdr.e_phnum, 1u);
  EXPECT_EQ(hdr.e_ehsize, sizeof(Elf64_Ehdr));
  EXPECT_EQ(hdr.e_shentsize, sizeof(Elf64_Shdr));
}

TEST(StInfo, PackAndUnpack) {
  const unsigned char info = st_info(kStbGlobal, kSttFunc);
  EXPECT_EQ(st_bind(info), kStbGlobal);
  EXPECT_EQ(st_type(info), kSttFunc);
}

}  // namespace
}  // namespace fhc::elf
