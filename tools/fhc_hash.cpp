// fhc-hash: ssdeep-style command-line fuzzy hashing.
//
//   fhc_hash FILE...            print "digest,filename" per file (all three
//                               feature channels)
//   fhc_hash -c DIGEST DIGEST   compare two digest strings (0..100)
//   fhc_hash -m FILE FILE       hash two files and compare per channel
//   fhc_hash -t TRACE...        fingerprint perf-stat counter traces and
//                               print the ssdeep-runtime channel digest
#include <cstdio>
#include <cstring>

#include "core/features.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"
#include "ssdeep/compare.hpp"
#include "util/io_util.hpp"

using namespace fhc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fhc_hash FILE...          hash files (3 channels)\n"
               "       fhc_hash -c DIG1 DIG2     compare two digests\n"
               "       fhc_hash -m FILE1 FILE2   hash + compare two files\n"
               "       fhc_hash -t TRACE...      hash counter traces (runtime "
               "channel)\n");
  return 2;
}

core::FeatureHashes hash_file(const char* path) {
  const auto bytes = util::read_file(path);
  return core::extract_feature_hashes(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  if (std::strcmp(argv[1], "-c") == 0) {
    if (argc != 4) return usage();
    const int score = ssdeep::compare_digest_strings(argv[2], argv[3]);
    if (score < 0) {
      std::fprintf(stderr, "fhc_hash: malformed digest\n");
      return 1;
    }
    std::printf("%d\n", score);
    return 0;
  }

  if (std::strcmp(argv[1], "-m") == 0) {
    if (argc != 4) return usage();
    try {
      const auto a = hash_file(argv[2]);
      const auto b = hash_file(argv[3]);
      for (int f = 0; f < core::kFeatureTypeCount; ++f) {
        const auto type = static_cast<core::FeatureType>(f);
        std::printf("%-14s %3d\n",
                    std::string(core::feature_type_name(type)).c_str(),
                    ssdeep::compare_digests(a.of(type), b.of(type)));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fhc_hash: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  if (std::strcmp(argv[1], "-t") == 0) {
    if (argc < 3) return usage();
    int trace_failures = 0;
    for (int i = 2; i < argc; ++i) {
      try {
        const runtime::CounterTrace trace = runtime::load_trace_file(argv[i]);
        const ssdeep::FuzzyDigest digest = runtime::hash_trace(trace);
        std::printf("%s,\"%s\",%zu samples\n", digest.to_string().c_str(),
                    argv[i], trace.size());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fhc_hash: %s: %s\n", argv[i], e.what());
        ++trace_failures;
      }
    }
    return trace_failures == 0 ? 0 : 1;
  }

  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      const auto hashes = hash_file(argv[i]);
      std::printf("%s,%s,%s,\"%s\"%s\n", hashes.file.to_string().c_str(),
                  hashes.strings.to_string().c_str(),
                  hashes.symbols.to_string().c_str(), argv[i],
                  hashes.has_symbols ? "" : ",stripped");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fhc_hash: %s: %s\n", argv[i], e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
