// fhc-inspect: print what is inside a model file without loading it.
//
//   fhc_inspect MODEL
//
// For a v2 sectioned container ("FHCMDLB2") this prints the section
// table — tag, offset, size, checksum, verification status — plus the
// TrainIndex counts header and the class/digest counts from the model
// preamble. v1 blobs ("FHCMDLB1") and text models get a shorter summary.
// Exit status is non-zero when the file is damaged (bad table, checksum
// mismatch), which makes the tool usable as a model fsck in deploy
// scripts.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "core/classifier.hpp"
#include "core/feature_matrix.hpp"
#include "util/model_map.hpp"
#include "util/sectioned.hpp"

using namespace fhc;

namespace {

bool starts_with(std::span<const std::byte> bytes, std::string_view magic) {
  return bytes.size() >= magic.size() &&
         std::memcmp(bytes.data(), magic.data(), magic.size()) == 0;
}

/// Pulls "classes K" / "train N" out of preamble text without a full parse.
void print_preamble_counts(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    if (line.rfind("classes ", 0) == 0 || line.rfind("train ", 0) == 0) {
      std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
    }
    if (line.rfind("train ", 0) == 0) return;  // digest rows follow
    if (nl == std::string_view::npos) return;
    pos = nl + 1;
  }
}

int inspect_v2(const util::ModelMap& map) {
  util::SectionedView view;
  try {
    view = util::SectionedView::attach(map.bytes(), core::kBinaryModelMagicV2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_inspect: damaged container: %s\n", e.what());
    return 1;
  }
  std::printf("format: v2 sectioned container (%.*s), %zu bytes, %zu sections\n",
              8, reinterpret_cast<const char*>(map.bytes().data()),
              map.bytes().size(), view.entries().size());
  std::printf("%-10s %12s %12s  %-16s\n", "tag", "offset", "size", "checksum");
  for (const util::SectionEntry& entry : view.entries()) {
    const std::string tag(entry.tag_view());
    std::printf("%-10s %12" PRIu64 " %12" PRIu64 "  %016" PRIx64 "\n", tag.c_str(),
                entry.offset, entry.size, entry.checksum);
  }
  try {
    view.verify_checksums();
    std::printf("checksums: all %zu sections verified\n", view.entries().size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_inspect: %s\n", e.what());
    return 1;
  }

  const auto meta =
      util::section_as<core::TrainIndex::Meta>(view, core::model_section::kMeta);
  if (meta.size() == 1) {
    std::printf("index: version %u, %u classes, %" PRIu64
                " training samples\n",
                meta[0].version, meta[0].n_classes, meta[0].train_count);
    std::printf("index entries per channel: file %u, strings %u, symbols %u\n",
                meta[0].entry_counts[0], meta[0].entry_counts[1],
                meta[0].entry_counts[2]);
  }
  const auto preamble = view.section("preamble");
  print_preamble_counts(std::string_view(
      reinterpret_cast<const char*>(preamble.data()), preamble.size()));
  return 0;
}

int inspect_v1(const util::ModelMap& map) {
  const auto bytes = map.bytes();
  std::printf("format: v1 monolithic blob (%.*s), %zu bytes\n", 8,
              reinterpret_cast<const char*>(bytes.data()), bytes.size());
  if (bytes.size() < 16) {
    std::fprintf(stderr, "fhc_inspect: truncated v1 header\n");
    return 1;
  }
  std::uint64_t preamble_size = 0;
  std::memcpy(&preamble_size, bytes.data() + 8, sizeof preamble_size);
  if (preamble_size > bytes.size() - 16) {
    std::fprintf(stderr, "fhc_inspect: truncated v1 preamble\n");
    return 1;
  }
  std::printf("preamble: %" PRIu64 " bytes; forest image: %zu bytes\n",
              preamble_size,
              bytes.size() - 16 - static_cast<std::size_t>(preamble_size));
  print_preamble_counts(
      std::string_view(reinterpret_cast<const char*>(bytes.data()) + 16,
                       static_cast<std::size_t>(preamble_size)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fhc_inspect MODEL\n");
    return 2;
  }
  try {
    const util::ModelMap map{std::string(argv[1])};
    if (starts_with(map.bytes(), core::kBinaryModelMagicV2)) {
      return inspect_v2(map);
    }
    if (starts_with(map.bytes(), core::kBinaryModelMagicV1)) {
      return inspect_v1(map);
    }
    std::printf("format: text model, %zu bytes\n", map.bytes().size());
    const std::string_view text(reinterpret_cast<const char*>(map.bytes().data()),
                                map.bytes().size());
    const std::size_t first_nl = text.find('\n');
    if (first_nl != std::string_view::npos) {
      std::printf("  magic line: %.*s\n", static_cast<int>(first_nl), text.data());
      print_preamble_counts(text.substr(first_nl + 1));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_inspect: %s\n", e.what());
    return 1;
  }
}
