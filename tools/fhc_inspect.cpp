// fhc-inspect: print what is inside a model file without loading it.
//
//   fhc_inspect MODEL
//
// For a v2 sectioned container ("FHCMDLB2") this prints the section
// table — tag, offset, size, checksum, verification status — plus the
// TrainIndex counts header with a per-channel breakdown labelled by
// channel *name* (from the "channels" roster section; a version-1 counts
// header implies the legacy static triple) and the class/digest counts
// from the model preamble. v1 blobs ("FHCMDLB1") and text models get a
// shorter summary. Exit status is non-zero when the file is damaged (bad
// table, checksum mismatch) or internally inconsistent (counts header vs
// channel roster vs gram-index section sizes), which makes the tool
// usable as a model fsck in deploy scripts.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>

#include "core/classifier.hpp"
#include "core/feature_matrix.hpp"
#include "util/model_map.hpp"
#include "util/sectioned.hpp"

using namespace fhc;

namespace {

bool starts_with(std::span<const std::byte> bytes, std::string_view magic) {
  return bytes.size() >= magic.size() &&
         std::memcmp(bytes.data(), magic.data(), magic.size()) == 0;
}

/// Pulls "classes K" / "train N" out of preamble text without a full parse.
void print_preamble_counts(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    if (line.rfind("classes ", 0) == 0 || line.rfind("train ", 0) == 0) {
      std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
    }
    if (line.rfind("train ", 0) == 0) return;  // digest rows follow
    if (nl == std::string_view::npos) return;
    pos = nl + 1;
  }
}

/// Validates the optional open-set calibration line in the preamble
/// header: "calibration <threshold> <target_fpr> <holdout_count>" with
/// threshold/target_fpr in [0,1]. holdout_count 0 marks a manual
/// deployment override (--unknown-threshold) rather than a fit-time
/// calibration. Absent means the legacy "never reject" default. Returns
/// non-zero (and reports on stderr) when the line is present but
/// malformed — a model that would refuse to load.
int check_calibration(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    if (line.rfind("calibration ", 0) == 0) {
      std::istringstream fields{std::string(line.substr(12))};
      double threshold = 0.0;
      double target_fpr = 0.0;
      std::uint32_t holdout = 0;
      std::string extra;
      if (!(fields >> threshold >> target_fpr >> holdout) || (fields >> extra) ||
          threshold < 0.0 || threshold > 1.0 || target_fpr < 0.0 ||
          target_fpr > 1.0) {
        std::fprintf(stderr,
                     "fhc_inspect: MISMATCH: malformed calibration line "
                     "'%.*s'\n",
                     static_cast<int>(line.size()), line.data());
        return 1;
      }
      if (holdout == 0) {
        std::printf("  calibration: reject below %.6f (manual override)\n",
                    threshold);
      } else {
        std::printf(
            "  calibration: reject below %.6f (target FPR %.3f, %u held out)\n",
            threshold, target_fpr, holdout);
      }
      return 0;
    }
    // The calibration line can only sit in the config block, before the
    // class-name lines (which may contain arbitrary text).
    if (line.rfind("classes ", 0) == 0) break;
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  std::printf("  calibration: none (never reject beyond the threshold)\n");
  return 0;
}

int inspect_v2(const util::ModelMap& map) {
  util::SectionedView view;
  try {
    view = util::SectionedView::attach(map.bytes(), core::kBinaryModelMagicV2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_inspect: damaged container: %s\n", e.what());
    return 1;
  }
  std::printf("format: v2 sectioned container (%.*s), %zu bytes, %zu sections\n",
              8, reinterpret_cast<const char*>(map.bytes().data()),
              map.bytes().size(), view.entries().size());
  std::printf("%-10s %12s %12s  %-16s\n", "tag", "offset", "size", "checksum");
  for (const util::SectionEntry& entry : view.entries()) {
    const std::string tag(entry.tag_view());
    std::printf("%-10s %12" PRIu64 " %12" PRIu64 "  %016" PRIx64 "\n", tag.c_str(),
                entry.offset, entry.size, entry.checksum);
  }
  try {
    view.verify_checksums();
    std::printf("checksums: all %zu sections verified\n", view.entries().size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_inspect: %s\n", e.what());
    return 1;
  }

  // Counts header + channel roster, cross-checked against each other and
  // against the gram-index section sizes they claim to describe.
  core::TrainIndex::MetaInfo meta;
  try {
    meta = core::TrainIndex::parse_meta(view.section(core::model_section::kMeta));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_inspect: bad counts header: %s\n", e.what());
    return 1;
  }
  core::ChannelSet channels;  // default: the legacy static triple
  std::span<const std::byte> roster_bytes;
  const bool has_roster =
      view.find(core::model_section::kChannels, roster_bytes);
  if (has_roster) {
    try {
      channels = core::channel_set_from_text(std::string_view(
          reinterpret_cast<const char*>(roster_bytes.data()), roster_bytes.size()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fhc_inspect: bad channel roster: %s\n", e.what());
      return 1;
    }
  }
  std::printf("index: version %u, %u classes, %" PRIu64
              " training samples, %zu channels%s\n",
              meta.version, meta.n_classes, meta.train_count,
              meta.entry_counts.size(),
              has_roster ? "" : " (implicit static triple)");
  int status = 0;
  if (meta.version == 1 && has_roster) {
    std::fprintf(stderr,
                 "fhc_inspect: MISMATCH: version-1 counts header next to a "
                 "channel roster section\n");
    status = 1;
  }
  if (channels.size() != meta.entry_counts.size()) {
    std::fprintf(stderr,
                 "fhc_inspect: MISMATCH: counts header declares %zu channels, "
                 "roster names %zu\n",
                 meta.entry_counts.size(), channels.size());
    status = 1;
  }
  const std::size_t shown = std::min(channels.size(), meta.entry_counts.size());
  for (std::size_t f = 0; f < shown; ++f) {
    std::printf("  channel %zu  %-16s %-8s %10u entries %6u gram buckets\n", f,
                channels[f].name.c_str(),
                std::string(core::channel_kind_name(channels[f].kind)).c_str(),
                meta.entry_counts[f], meta.dir_counts[f]);
  }
  // The per-channel counts are the sole description of how the flat
  // "gentries"/"gramdir" sections split; a disagreement means the header
  // and the payload come from different models.
  const auto check_section = [&](std::string_view tag, std::uint64_t want_elems,
                                 std::size_t elem_size) {
    std::span<const std::byte> payload;
    if (!view.find(tag, payload)) {
      if (want_elems == 0) return;
      std::fprintf(stderr,
                   "fhc_inspect: MISMATCH: counts header expects %" PRIu64
                   " elements but section '%.*s' is absent\n",
                   want_elems, static_cast<int>(tag.size()), tag.data());
      status = 1;
      return;
    }
    if (payload.size() != want_elems * elem_size) {
      std::fprintf(stderr,
                   "fhc_inspect: MISMATCH: section '%.*s' holds %zu bytes, "
                   "counts header implies %" PRIu64 "\n",
                   static_cast<int>(tag.size()), tag.data(), payload.size(),
                   want_elems * elem_size);
      status = 1;
    }
  };
  check_section(core::model_section::kEntries,
                std::accumulate(meta.entry_counts.begin(), meta.entry_counts.end(),
                                std::uint64_t{0}),
                sizeof(core::TrainIndex::GramEntry));
  check_section(core::model_section::kGramDir,
                std::accumulate(meta.dir_counts.begin(), meta.dir_counts.end(),
                                std::uint64_t{0}),
                sizeof(core::TrainIndex::GramDirEntry));
  if (status == 0) {
    std::printf("consistency: counts header, channel roster, and gram-index "
                "sections agree\n");
  }
  const auto preamble = view.section("preamble");
  const std::string_view preamble_text(
      reinterpret_cast<const char*>(preamble.data()), preamble.size());
  print_preamble_counts(preamble_text);
  if (check_calibration(preamble_text) != 0) status = 1;
  return status;
}

int inspect_v1(const util::ModelMap& map) {
  const auto bytes = map.bytes();
  std::printf("format: v1 monolithic blob (%.*s), %zu bytes\n", 8,
              reinterpret_cast<const char*>(bytes.data()), bytes.size());
  if (bytes.size() < 16) {
    std::fprintf(stderr, "fhc_inspect: truncated v1 header\n");
    return 1;
  }
  std::uint64_t preamble_size = 0;
  std::memcpy(&preamble_size, bytes.data() + 8, sizeof preamble_size);
  if (preamble_size > bytes.size() - 16) {
    std::fprintf(stderr, "fhc_inspect: truncated v1 preamble\n");
    return 1;
  }
  std::printf("preamble: %" PRIu64 " bytes; forest image: %zu bytes\n",
              preamble_size,
              bytes.size() - 16 - static_cast<std::size_t>(preamble_size));
  const std::string_view preamble_text(
      reinterpret_cast<const char*>(bytes.data()) + 16,
      static_cast<std::size_t>(preamble_size));
  print_preamble_counts(preamble_text);
  return check_calibration(preamble_text);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fhc_inspect MODEL\n");
    return 2;
  }
  try {
    const util::ModelMap map{std::string(argv[1])};
    if (starts_with(map.bytes(), core::kBinaryModelMagicV2)) {
      return inspect_v2(map);
    }
    if (starts_with(map.bytes(), core::kBinaryModelMagicV1)) {
      return inspect_v1(map);
    }
    std::printf("format: text model, %zu bytes\n", map.bytes().size());
    const std::string_view text(reinterpret_cast<const char*>(map.bytes().data()),
                                map.bytes().size());
    const std::size_t first_nl = text.find('\n');
    if (first_nl != std::string_view::npos) {
      std::printf("  magic line: %.*s\n", static_cast<int>(first_nl), text.data());
      print_preamble_counts(text.substr(first_nl + 1));
      return check_calibration(text.substr(first_nl + 1));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_inspect: %s\n", e.what());
    return 1;
  }
}
