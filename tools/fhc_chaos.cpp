// fhc-chaos: deterministic fault-injection sweep against a live daemon.
//
//   fhc_chaos MODEL FILE[@TRACE]... [options]
//
// Boots one in-process daemon (service + command handler + SocketServer
// on a private Unix socket) from MODEL, computes the serial-path
// prediction for every FILE, then sweeps fail-the-Nth-call schedules
// over the injectable syscall sites (util/fault_inject.hpp): for every
// (site, N) pair it arms the injector, drives a retrying load run
// through real sockets, disarms, and verifies with a clean client that
// the daemon still answers every request bit-identically to the serial
// path. The three chaos invariants, checked on every cell of the sweep:
//
//   1. the daemon never crashes (the sweep is in-process: a crash kills
//      the tool, which is the failure signal);
//   2. replies stay strictly ordered per connection (run_load fails on
//      any reply without a pending request);
//   3. after recovery, predictions are bit-identical to serial predict.
//
// options:
//   --sites LIST    comma-separated sites to sweep (default
//                   read,write,accept,epoll_wait,eventfd,alloc — the
//                   socket-path sites; mmap/fsync/rename need a RELOAD
//                   and are covered by --reload)
//   --nth-max K     sweep N = 1..K per site (default 4)
//   --requests N    frames per load run (default 32)
//   --connections C load connections (default 2)
//   --retries R     client retry budget per run (default 8)
//   --seed S        injector seed (default 1)
//   --reload PATH   also sweep mmap/fsync/rename by issuing RELOAD PATH
//                   under fault; the daemon must answer ERROR (or OK
//                   once the fault is spent) and keep serving
//
// Exit codes: 0 all sweeps clean, 1 invariant violated, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/classifier.hpp"
#include "core/features.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"
#include "service/command_handler.hpp"
#include "service/service.hpp"
#include "util/fault_inject.hpp"
#include "util/io_util.hpp"

using namespace fhc;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: fhc_chaos MODEL FILE[@TRACE]... [options]\n"
      "  --sites LIST     comma-separated fault sites (default\n"
      "                   read,write,accept,epoll_wait,eventfd,alloc)\n"
      "  --nth-max K      sweep fail-the-Nth for N=1..K (default 4)\n"
      "  --requests N     frames per load run (default 32)\n"
      "  --connections C  load connections (default 2)\n"
      "  --retries R      client retry budget (default 8)\n"
      "  --seed S         injector seed (default 1)\n"
      "  --reload PATH    sweep mmap/fsync/rename via RELOAD PATH\n");
  return 2;
}

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

std::optional<util::FaultSite> site_by_name(const std::string& name) {
  for (std::size_t i = 0; i < util::kFaultSiteCount; ++i) {
    const auto site = static_cast<util::FaultSite>(i);
    if (name == util::fault_site_name(site)) return site;
  }
  return std::nullopt;
}

/// One FILE[@TRACE] hashed to a frame plus its serial-path expectation.
struct Case {
  std::string spec;
  std::string frame;
  core::Prediction expected;
};

bool build_case(const core::FuzzyHashClassifier& model, const std::string& spec,
                Case& out, std::string& error) {
  try {
    const std::size_t at = spec.rfind('@');
    const auto image =
        util::read_file(at == std::string::npos ? spec : spec.substr(0, at));
    core::FeatureHashes sample = core::extract_feature_hashes(image);
    if (at != std::string::npos) {
      runtime::attach_trace(sample,
                            runtime::load_trace_file(spec.substr(at + 1)));
    }
    out.spec = spec;
    out.expected = model.predict(sample);
    std::vector<std::string> digests;
    digests.reserve(sample.channel_count());
    for (std::size_t i = 0; i < sample.channel_count(); ++i) {
      digests.push_back(sample.channel(i).to_string());
    }
    net::encode_classify_digests(out.frame, digests);
    return true;
  } catch (const std::exception& e) {
    error = spec + ": " + e.what();
    return false;
  }
}

/// Clean-client check: every case must answer bit-identically to serial.
bool verify_serial_identity(const net::Endpoint& endpoint,
                            const std::vector<Case>& cases,
                            std::string& error) {
  net::BlockingClient client;
  client.set_recv_timeout(5000);
  const std::string connect_error = client.connect(endpoint, /*retries=*/100);
  if (!connect_error.empty()) {
    error = "verify connect: " + connect_error;
    return false;
  }
  for (const Case& c : cases) {
    if (!client.send_bytes(c.frame)) {
      error = "verify send failed for " + c.spec;
      return false;
    }
    net::Response response;
    std::string read_error;
    if (!client.read_response(response, &read_error)) {
      error = "verify read failed for " + c.spec + ": " + read_error;
      return false;
    }
    if (response.op != net::Opcode::kPrediction ||
        response.label != c.expected.label ||
        response.is_unknown != c.expected.is_unknown ||
        std::memcmp(&response.confidence, &c.expected.confidence,
                    sizeof(double)) != 0) {
      error = "verify mismatch for " + c.spec + ": got op=0x" +
              std::to_string(static_cast<unsigned>(response.op)) + " label=" +
              std::to_string(response.label) + ", want label=" +
              std::to_string(c.expected.label) + " (bit-identical)";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string model_path = argv[1];

  std::vector<std::string> site_names = {"read",   "write",   "accept",
                                         "epoll_wait", "eventfd", "alloc"};
  std::size_t nth_max = 4;
  std::size_t requests = 32;
  std::size_t connections = 2;
  std::size_t retries = 8;
  std::size_t seed = 1;
  std::string reload_path;
  std::vector<std::string> specs;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--sites") {
      const char* list = value();
      if (list == nullptr) return usage();
      site_names.clear();
      std::string token;
      for (const char* p = list;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!token.empty()) site_names.push_back(token);
          token.clear();
          if (*p == '\0') break;
        } else {
          token.push_back(*p);
        }
      }
    } else if (arg == "--nth-max") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, nth_max) || nth_max == 0) {
        return usage();
      }
    } else if (arg == "--requests") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, requests) || requests == 0) {
        return usage();
      }
    } else if (arg == "--connections") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, connections) || connections == 0) {
        return usage();
      }
    } else if (arg == "--retries") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, retries)) return usage();
    } else if (arg == "--seed") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, seed)) return usage();
    } else if (arg == "--reload") {
      const char* path = value();
      if (path == nullptr) return usage();
      reload_path = path;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fhc_chaos: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      specs.push_back(arg);
    }
  }
  if (specs.empty()) {
    std::fprintf(stderr, "fhc_chaos: need at least one FILE\n");
    return usage();
  }

  // Two independent loads: one moves into the service, one stays as the
  // serial-path oracle.
  std::unique_ptr<service::ClassificationService> svc;
  core::FuzzyHashClassifier oracle;
  try {
    oracle = core::FuzzyHashClassifier::load_file(model_path);
    core::FuzzyHashClassifier serving =
        core::FuzzyHashClassifier::load_file(model_path);
    svc = std::make_unique<service::ClassificationService>(
        std::move(serving), service::ServiceConfig{});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_chaos: %s\n", e.what());
    return 1;
  }

  std::vector<Case> cases;
  for (const std::string& spec : specs) {
    Case c;
    std::string error;
    if (!build_case(oracle, spec, c, error)) {
      std::fprintf(stderr, "fhc_chaos: %s\n", error.c_str());
      return 1;
    }
    cases.push_back(std::move(c));
  }

  service::CommandHandler handler(*svc);
  net::ServerConfig server_config;
  server_config.unix_path =
      "/tmp/fhc_chaos_" + std::to_string(::getpid()) + ".sock";
  // Modest timeouts so the timer wheel runs during the sweep too.
  server_config.idle_timeout_ms = 2000;
  server_config.read_progress_timeout_ms = 2000;
  net::SocketServer server(handler, server_config);
  server.start();

  net::Endpoint endpoint;
  endpoint.unix_path = server.unix_socket_path();

  std::vector<std::string> frames;
  for (const Case& c : cases) frames.push_back(c.frame);

  util::FaultInjector& injector = util::FaultInjector::instance();
  std::size_t violations = 0;
  std::printf("%-12s %4s %9s %10s %8s %8s  %s\n", "site", "N", "injected",
              "replies", "retries", "reconn", "verdict");

  const auto sweep_cell = [&](util::FaultSite site, std::size_t nth) {
    util::FaultPlan plan;
    plan.seed = seed;
    util::FaultRule rule;
    rule.site = site;
    rule.nth = nth;
    plan.rules.push_back(rule);
    injector.arm(std::move(plan));

    net::LoadOptions options;
    options.endpoint = endpoint;
    options.connections = connections;
    options.pipeline = 4;
    options.requests = requests;
    options.connect_retries = 100;
    options.retries = static_cast<int>(retries);
    options.backoff_ms = 2;
    options.retry_seed = seed;
    options.recv_timeout_ms = 3000;
    const net::LoadResult result = net::run_load(options, frames);

    const std::uint64_t injected =
        injector.counters()[static_cast<std::size_t>(site)].injected;
    injector.disarm();

    // Recovery gate: with faults off, the daemon must serve every case
    // bit-identically to the serial path.
    std::string verify_error;
    const bool identical = verify_serial_identity(endpoint, cases, verify_error);
    // The armed run may legitimately fail (budget exhausted under a
    // persistent fault) — but a reply-order violation is never legitimate.
    const bool order_violated =
        result.failure.find("reply without a pending request") !=
        std::string::npos;
    const bool ok = identical && !order_violated;
    if (!ok) ++violations;
    std::printf("%-12s %4zu %9llu %10.0f %8zu %8zu  %s%s%s\n",
                util::fault_site_name(site), nth,
                static_cast<unsigned long long>(injected), result.replies(),
                result.busy_retries, result.reconnects, ok ? "ok" : "VIOLATION",
                identical ? "" : " [serial-identity]",
                order_violated ? " [reply-order]" : "");
    if (!identical) {
      std::fprintf(stderr, "fhc_chaos:   %s\n", verify_error.c_str());
    }
  };

  for (const std::string& name : site_names) {
    const std::optional<util::FaultSite> site = site_by_name(name);
    if (!site) {
      std::fprintf(stderr, "fhc_chaos: unknown site '%s'\n", name.c_str());
      server.stop();
      server.join();
      return 2;
    }
    for (std::size_t nth = 1; nth <= nth_max; ++nth) sweep_cell(*site, nth);
  }

  // RELOAD sweep: mmap/fsync/rename fire only on the model load path.
  // The daemon must keep serving the old snapshot when the reload is
  // damaged, and never crash.
  if (!reload_path.empty()) {
    for (const util::FaultSite site :
         {util::FaultSite::kMmap, util::FaultSite::kFsync,
          util::FaultSite::kRename}) {
      for (std::size_t nth = 1; nth <= nth_max; ++nth) {
        util::FaultPlan plan;
        plan.seed = seed;
        util::FaultRule rule;
        rule.site = site;
        rule.nth = nth;
        plan.rules.push_back(rule);
        injector.arm(std::move(plan));

        net::BlockingClient client;
        client.set_recv_timeout(5000);
        std::string error = client.connect(endpoint, /*retries=*/100);
        bool reload_ok = error.empty();
        if (reload_ok) {
          std::string wire;
          net::encode_reload(wire, reload_path);
          net::Response response;
          reload_ok = client.send_bytes(wire) &&
                      client.read_response(response, &error) &&
                      (response.op == net::Opcode::kOk ||
                       response.op == net::Opcode::kError);
        }
        const std::uint64_t injected =
            injector.counters()[static_cast<std::size_t>(site)].injected;
        injector.disarm();

        std::string verify_error;
        const bool identical =
            verify_serial_identity(endpoint, cases, verify_error);
        const bool ok = reload_ok && identical;
        if (!ok) ++violations;
        std::printf("%-12s %4zu %9llu %10s %8s %8s  %s%s%s\n",
                    util::fault_site_name(site), nth,
                    static_cast<unsigned long long>(injected), "-", "-", "-",
                    ok ? "ok" : "VIOLATION",
                    reload_ok ? "" : " [reload-reply]",
                    identical ? "" : " [serial-identity]");
        if (!identical) {
          std::fprintf(stderr, "fhc_chaos:   %s\n", verify_error.c_str());
        }
      }
    }
  }

  server.stop();
  server.join();
  if (violations > 0) {
    std::fprintf(stderr, "fhc_chaos: %zu sweep cells violated invariants\n",
                 violations);
    return 1;
  }
  std::printf("fhc_chaos: all sweep cells clean\n");
  return 0;
}
