#!/usr/bin/env sh
# Chaos smoke for CI: run the REAL fhc_serve binary with fault injection
# armed through the environment (FHC_FAULT), drive it with a retrying
# fhc_loadgen, and assert the daemon absorbs each injected fault class —
# every request still gets a reply, QUIT still shuts it down cleanly,
# and a deadline sweep sheds instead of hanging. In-process chaos lives
# in `ctest -L chaos`; this script proves the same invariants hold for
# the shipped binaries end to end.
#
# Usage: tools/ci_chaos_smoke.sh [BUILD_DIR]   (default: build)
set -eu

BUILD_DIR="${1:-build}"
TOOLS="$BUILD_DIR/tools"
WORK="$(mktemp -d)"
WATCHDOG_PID=""
cleanup() {
  [ -n "$WATCHDOG_PID" ] && kill "$WATCHDOG_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

for tool in fhc_train fhc_serve fhc_loadgen fhc_hash fhc_chaos; do
  if [ ! -x "$TOOLS/$tool" ]; then
    echo "error: $TOOLS/$tool not built" >&2
    exit 2
  fi
done

mkdir -p "$WORK/corpus/ToolHash/1.0" "$WORK/corpus/ToolTrain/1.0"
cp "$TOOLS/fhc_hash"  "$WORK/corpus/ToolHash/1.0/a"
cp "$TOOLS/fhc_hash"  "$WORK/corpus/ToolHash/1.0/b"
cp "$TOOLS/fhc_train" "$WORK/corpus/ToolTrain/1.0/a"
cp "$TOOLS/fhc_train" "$WORK/corpus/ToolTrain/1.0/b"
"$TOOLS/fhc_train" --binary "$WORK/corpus" "$WORK/chaos.fhcb"

# Hard ceiling on the whole smoke: a hung daemon or client must fail the
# job inside CI's patience, not eat the runner. SIGKILL the process
# group; `wait` below then reports the failure.
( sleep 120; echo "error: chaos smoke watchdog fired" >&2; kill -9 0 ) &
WATCHDOG_PID=$!

# One daemon run per fault spec. Each spec targets a different wrapped
# site; nth picks a call deep enough that the fault lands mid-traffic.
run_cell() {
  SPEC="$1"
  SOCK="$WORK/chaos_$$.sock"
  rm -f "$SOCK"
  FHC_FAULT="$SPEC" FHC_FAULT_SEED=7 \
    "$TOOLS/fhc_serve" "$WORK/chaos.fhcb" --unix "$SOCK" \
    --idle-timeout-ms 5000 --read-timeout-ms 5000 &
  SERVE_PID=$!
  # --retries covers both the connect race and the injected faults:
  # transport errors reconnect + re-send, BUSY backs off. --expect-all
  # still demands a prediction for every request.
  if ! "$TOOLS/fhc_loadgen" --unix "$SOCK" \
      --connections 4 --pipeline 4 --requests 24 \
      --retries 50 --backoff-ms 2 --recv-timeout-ms 3000 \
      --expect-all --quit \
      "$TOOLS/fhc_hash" "$TOOLS/fhc_train"; then
    echo "error: loadgen failed under FHC_FAULT=$SPEC" >&2
    kill -9 "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  if ! wait "$SERVE_PID"; then
    echo "error: fhc_serve crashed under FHC_FAULT=$SPEC" >&2
    exit 1
  fi
  echo "chaos cell OK: FHC_FAULT=$SPEC"
}

run_cell "read:nth=2"
run_cell "write:nth=2"
run_cell "accept:nth=1"
run_cell "epoll_wait:nth=3"
run_cell "eventfd:nth=2"
run_cell "read:p=0.05:max=6;write:p=0.05:max=6"

# Deadline sweep against a clean daemon: a 1ms budget on every frame
# must shed (DEADLINE_EXCEEDED) rather than hang; drop --expect-all
# since shed replies are the point.
SOCK="$WORK/chaos_ddl.sock"
"$TOOLS/fhc_serve" "$WORK/chaos.fhcb" --unix "$SOCK" \
  --max-queue-delay-ms 2000 &
SERVE_PID=$!
"$TOOLS/fhc_loadgen" --unix "$SOCK" \
  --connections 2 --pipeline 4 --requests 16 \
  --retries 100 --recv-timeout-ms 3000 --deadline-ms 1 --quit \
  "$TOOLS/fhc_hash" > "$WORK/deadline.out"
cat "$WORK/deadline.out"
wait "$SERVE_PID"
if grep -q "deadline_exceeded=0 " "$WORK/deadline.out"; then
  echo "error: 1ms deadlines never shed a request" >&2
  exit 1
fi

# The sweep harness itself: in-process oracle + serving daemon, Nth-call
# sweep with bit-identity verification after every cell.
"$TOOLS/fhc_chaos" "$WORK/chaos.fhcb" "$TOOLS/fhc_hash" "$TOOLS/fhc_train" \
  --nth-max 2 --requests 16 --connections 2 --retries 20 \
  --reload "$WORK/chaos.fhcb"

echo "chaos smoke: OK"
