#!/usr/bin/env sh
# End-to-end socket smoke for CI: train a tiny model from the built tool
# binaries (a ready-made two-class corpus — no fixtures needed), start
# fhc_serve on a Unix-domain socket, drive it with fhc_loadgen over
# pipelined connections, and assert (a) every request got a prediction
# reply and (b) the QUIT frame shut the daemon down with exit 0.
#
# Usage: tools/ci_socket_smoke.sh [BUILD_DIR]   (default: build)
set -eu

BUILD_DIR="${1:-build}"
TOOLS="$BUILD_DIR/tools"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

for tool in fhc_train fhc_serve fhc_loadgen fhc_hash fhc_classify; do
  if [ ! -x "$TOOLS/$tool" ]; then
    echo "error: $TOOLS/$tool not built" >&2
    exit 2
  fi
done

# Corpus layout is ROOT/<Class>/<version>/<executable>; two binaries per
# class so leave-one-out style splits inside training stay meaningful.
mkdir -p "$WORK/corpus/ToolHash/1.0" "$WORK/corpus/ToolTrain/1.0"
cp "$TOOLS/fhc_hash"  "$WORK/corpus/ToolHash/1.0/a"
cp "$TOOLS/fhc_hash"  "$WORK/corpus/ToolHash/1.0/b"
cp "$TOOLS/fhc_train" "$WORK/corpus/ToolTrain/1.0/a"
cp "$TOOLS/fhc_train" "$WORK/corpus/ToolTrain/1.0/b"

"$TOOLS/fhc_train" --binary "$WORK/corpus" "$WORK/smoke.fhcb"

SOCK="$WORK/ci.sock"
"$TOOLS/fhc_serve" "$WORK/smoke.fhcb" --unix "$SOCK" &
SERVE_PID=$!

# --retries inside fhc_loadgen handles the startup race (connect retries
# with backoff), so no fragile sleep is needed here. --expect-all turns
# any BUSY/ERROR reply into a non-zero exit; --quit sends the daemon its
# shutdown frame after the run.
"$TOOLS/fhc_loadgen" --unix "$SOCK" \
  --connections 8 --pipeline 4 --requests 32 --retries 100 \
  --expect-all --stats --quit \
  "$TOOLS/fhc_classify" "$TOOLS/fhc_hash"

wait "$SERVE_PID"
echo "socket e2e smoke: OK (clean daemon exit)"
