#!/usr/bin/env sh
# End-to-end socket smoke for CI: train a tiny model from the built tool
# binaries (a ready-made two-class corpus — no fixtures needed), start
# fhc_serve on a Unix-domain socket, drive it with fhc_loadgen over
# pipelined connections, and assert (a) every request got a prediction
# reply and (b) the QUIT frame shut the daemon down with exit 0.
#
# Usage: tools/ci_socket_smoke.sh [BUILD_DIR]   (default: build)
set -eu

BUILD_DIR="${1:-build}"
TOOLS="$BUILD_DIR/tools"
WORK="$(mktemp -d)"
WATCHDOG_PID=""
cleanup() {
  [ -n "$WATCHDOG_PID" ] && kill "$WATCHDOG_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Hard ceiling: a daemon that never answers QUIT (or a loadgen stuck on
# a dead socket) must fail the step, not hang the runner. SIGKILL the
# process group; the stuck `wait` below then surfaces the failure.
( sleep 120; echo "error: socket smoke watchdog fired" >&2; kill -9 0 ) &
WATCHDOG_PID=$!

for tool in fhc_train fhc_serve fhc_loadgen fhc_hash fhc_classify fhc_inspect; do
  if [ ! -x "$TOOLS/$tool" ]; then
    echo "error: $TOOLS/$tool not built" >&2
    exit 2
  fi
done

# Corpus layout is ROOT/<Class>/<version>/<executable>; two binaries per
# class so leave-one-out style splits inside training stay meaningful.
mkdir -p "$WORK/corpus/ToolHash/1.0" "$WORK/corpus/ToolTrain/1.0"
cp "$TOOLS/fhc_hash"  "$WORK/corpus/ToolHash/1.0/a"
cp "$TOOLS/fhc_hash"  "$WORK/corpus/ToolHash/1.0/b"
cp "$TOOLS/fhc_train" "$WORK/corpus/ToolTrain/1.0/a"
cp "$TOOLS/fhc_train" "$WORK/corpus/ToolTrain/1.0/b"

# --calibrate fits an open-set rejection threshold on a held-out split;
# fhc_inspect then acts as the model fsck (non-zero on a malformed or
# missing calibration block).
"$TOOLS/fhc_train" --binary --calibrate "$WORK/corpus" "$WORK/smoke.fhcb"
# No pipe: set -e must see fhc_inspect's own exit status (model fsck).
"$TOOLS/fhc_inspect" "$WORK/smoke.fhcb" > "$WORK/inspect.out"
cat "$WORK/inspect.out"
grep -q "calibration: reject below" "$WORK/inspect.out" || {
  echo "error: calibrated model missing calibration block" >&2
  exit 1
}

SOCK="$WORK/ci.sock"
"$TOOLS/fhc_serve" "$WORK/smoke.fhcb" --unix "$SOCK" &
SERVE_PID=$!

# --retries inside fhc_loadgen handles the startup race (connect retries
# with backoff), so no fragile sleep is needed here. --expect-all turns
# any BUSY/ERROR reply into a non-zero exit; --quit sends the daemon its
# shutdown frame after the run.
"$TOOLS/fhc_loadgen" --unix "$SOCK" \
  --connections 8 --pipeline 4 --requests 32 --retries 100 \
  --expect-all --stats \
  "$TOOLS/fhc_classify" "$TOOLS/fhc_hash"

# Open-set assertion: binaries the calibrated model was trained on must
# come back as known classes (--expect-known fails on any PREDICTION
# carrying the unknown flag). Only corpus members qualify — fhc_classify
# above is deliberately foreign traffic and may legitimately be flagged.
"$TOOLS/fhc_loadgen" --unix "$SOCK" \
  --connections 2 --pipeline 2 --requests 8 --retries 100 \
  --expect-all --expect-known --quit \
  "$TOOLS/fhc_train" "$TOOLS/fhc_hash"

wait "$SERVE_PID"
echo "socket e2e smoke: OK (clean daemon exit)"
