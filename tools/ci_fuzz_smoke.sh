#!/usr/bin/env sh
# Fuzz smoke for CI: replay every checked-in corpus through its fuzz
# target, then hammer each target with deterministic mutations of the
# corpus (the replay driver's --mutate mode — see tests/fuzz/). On the
# sanitizer job this catches the same shallow memory/UB crash classes a
# short libFuzzer run finds, without needing Clang. Under a Clang
# -DFHC_FUZZ=ON build the targets are real libFuzzer binaries; drive
# them directly (e.g. `fuzz_x -runs=100000 tests/fuzz/corpus/fuzz_x`)
# instead of with this script.
#
# Usage: tools/ci_fuzz_smoke.sh [BUILD_DIR] [MUTATIONS_PER_INPUT]
set -eu

BUILD_DIR="${1:-build}"
MUTATIONS="${2:-200}"
CORPUS_ROOT="$(dirname "$0")/../tests/fuzz/corpus"

for target in fuzz_parse_digest fuzz_elf_reader fuzz_model_load \
              fuzz_net_frame fuzz_trace fuzz_row_differential; do
  bin="$BUILD_DIR/tests/fuzz/$target"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (configure with -DFHC_FUZZ=ON)" >&2
    exit 2
  fi
  echo "== $target"
  "$bin" --mutate "$MUTATIONS" --seed 7 "$CORPUS_ROOT/$target"
done
echo "fuzz smoke: OK (all targets survived corpus + mutations)"
