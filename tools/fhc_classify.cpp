// fhc-classify: label executables with a trained model (the Slurm-prolog
// side of the paper's envisioned workflow).
//
//   fhc_classify [--unknown-threshold T] MODEL FILE[@TRACE]...
//
// --unknown-threshold T overrides the model's unknown-rejection floor
// for this run: predictions whose winning probability falls below T are
// flagged -1 (exit code 3) regardless of the model's trained or
// calibrated threshold — the deployment-side open-set knob.
//
// All readable files are hashed up front and scored through a single
// predict_batch pass (one parallel feature-matrix build instead of a
// serial per-file predict loop). Prints one line per classified file:
// predicted class (or -1 for unknown), confidence, and the path;
// per-file read/extract failures go to stderr.
//
// FILE@TRACE pairs the executable with a perf-stat counter trace
// (CSV or line-JSON, see src/runtime/) hashed into the model's
// "ssdeep-runtime" channel — for models trained with `fhc_train
// --runtime`. Against a static-triple model the extra digest is simply
// ignored; a four-channel model scores a trace-less file 0 on the
// runtime channel, like a stripped binary on the symbols channel.
//
// Exit codes (prolog scripting contract, also in the usage string):
//   0  every file classified as a known class
//   1  some file could not be read or hashed (takes precedence over 3)
//   2  usage error or unreadable model
//   3  at least one file was flagged unknown
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"
#include "util/io_util.hpp"

using namespace fhc;

int main(int argc, char** argv) {
  bool have_unknown_threshold = false;
  double unknown_threshold = 0.0;
  while (argc > 1 && std::strncmp(argv[1], "--", 2) == 0) {
    if (std::strcmp(argv[1], "--unknown-threshold") == 0 && argc > 2) {
      have_unknown_threshold = true;
      unknown_threshold = std::atof(argv[2]);
      if (unknown_threshold < 0.0 || unknown_threshold > 1.0) {
        std::fprintf(stderr,
                     "fhc_classify: --unknown-threshold must be in [0,1]\n");
        return 2;
      }
      argc -= 2;
      argv += 2;
    } else {
      std::fprintf(stderr, "fhc_classify: unknown option %s\n", argv[1]);
      return 2;
    }
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: fhc_classify [--unknown-threshold T] MODEL FILE[@TRACE]...\n"
                 "exit codes: 0 all files known; 1 read/extract error (wins over 3);\n"
                 "            2 usage or model-load error; 3 some file unknown\n");
    return 2;
  }

  core::FuzzyHashClassifier classifier;
  try {
    classifier = core::FuzzyHashClassifier::load_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_classify: %s\n", e.what());
    return 2;
  }
  if (have_unknown_threshold) classifier.set_unknown_threshold(unknown_threshold);

  std::vector<const char*> paths;       // arguments that hashed successfully
  std::vector<core::FeatureHashes> samples;  // parallel to paths
  int errors = 0;
  for (int i = 2; i < argc; ++i) {
    try {
      const std::string arg = argv[i];
      const std::size_t at = arg.rfind('@');
      const std::string file = at == std::string::npos ? arg : arg.substr(0, at);
      const auto image = util::read_file(file);
      core::FeatureHashes sample = core::extract_feature_hashes(image);
      if (at != std::string::npos) {
        runtime::attach_trace(sample,
                              runtime::load_trace_file(arg.substr(at + 1)));
      }
      samples.push_back(std::move(sample));
      paths.push_back(argv[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fhc_classify: %s: %s\n", argv[i], e.what());
      ++errors;
    }
  }

  int unknowns = 0;
  if (!samples.empty()) {
    // predict_batch stores probabilities in the float Matrix, so the
    // threshold comparison happens at float granularity (same as every
    // batch evaluation path); a probability within float epsilon of the
    // threshold can in principle flag differently than the double-path
    // serial predict() used by fhc_serve.
    ml::Matrix proba;
    const std::vector<int> labels = classifier.predict_batch(samples, &proba);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      double confidence = 0.0;
      for (const float p : proba.row(i)) confidence = std::max(confidence, double{p});
      if (labels[i] == ml::kUnknownLabel) {
        ++unknowns;
        std::printf("-1\t%.2f\t%s\n", confidence, paths[i]);
      } else {
        std::printf("%s\t%.2f\t%s\n",
                    classifier.class_names()[static_cast<std::size_t>(labels[i])]
                        .c_str(),
                    confidence, paths[i]);
      }
    }
  }
  if (errors > 0) return 1;
  return unknowns > 0 ? 3 : 0;
}
