// fhc-classify: label executables with a trained model (the Slurm-prolog
// side of the paper's envisioned workflow).
//
//   fhc_classify MODEL FILE...
//
// Prints one line per file: predicted class (or -1 for unknown),
// confidence, and the path. Exit code 0 if all files were known, 3 if any
// was flagged unknown (convenient for prolog scripting).
#include <cstdio>

#include "core/classifier.hpp"
#include "util/io_util.hpp"

using namespace fhc;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: fhc_classify MODEL FILE...\n");
    return 2;
  }

  core::FuzzyHashClassifier classifier;
  try {
    classifier = core::FuzzyHashClassifier::load_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_classify: %s\n", e.what());
    return 1;
  }

  int unknowns = 0;
  int errors = 0;
  for (int i = 2; i < argc; ++i) {
    try {
      const auto image = util::read_file(argv[i]);
      const core::Prediction pred =
          classifier.predict(core::extract_feature_hashes(image));
      if (pred.label == ml::kUnknownLabel) {
        ++unknowns;
        std::printf("-1\t%.2f\t%s\n", pred.confidence, argv[i]);
      } else {
        std::printf("%s\t%.2f\t%s\n",
                    classifier.class_names()[static_cast<std::size_t>(pred.label)]
                        .c_str(),
                    pred.confidence, argv[i]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fhc_classify: %s: %s\n", argv[i], e.what());
      ++errors;
    }
  }
  if (errors > 0) return 1;
  return unknowns > 0 ? 3 : 0;
}
