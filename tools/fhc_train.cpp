// fhc-train: train a Fuzzy Hash Classifier from a labelled directory tree
// and write the model file.
//
//   fhc_train [--binary] [--runtime] [--calibrate[=FPR]] ROOT MODEL
//             [threshold] [n_trees]
//
// ROOT follows the sciCORE layout the paper scrapes:
//   ROOT/<ApplicationClass>/<version>/<executable>
// Every regular file below ROOT is a sample labelled by its top-level
// directory. Use `fhc_classify MODEL FILE...` afterwards.
//
// --runtime trains with the execution-fingerprint channel ("ssdeep-runtime")
// in addition to the static triple: a sample <exe> picks up its counter
// trace from a sibling <exe>.trace / <exe>.trace.csv / <exe>.trace.json
// (perf stat -I interval output, CSV or line-JSON — see src/runtime/).
// Samples without a trace train with an empty runtime digest, exactly like
// stripped binaries on the symbols channel.
//
// --calibrate enables open-set rejection: fit() holds out a stratified
// slice of the training set, scores it with a calibration forest, and
// records the FPR-quantile (default 0.05) of the held-out max
// probabilities in the model as the unknown-rejection threshold —
// fhc_classify / fhc_serve then flag never-seen applications instead of
// force-labeling them (paper Table 3's unknown pool).
//
// --binary writes the v2 sectioned container ("FHCMDLB2"): prepared
// digests, per-channel gram indexes, and the forest plan laid out for
// zero-copy mmap attach, making `fhc_serve` RELOAD O(mmap) at any corpus
// size. v1 blobs and text models stay readable; every consumer
// (`fhc_classify`, `fhc_serve`, `fhc_inspect`) sniffs the format
// automatically.
//
// Demo without real data: materialize the synthetic corpus first —
//   FHC_SCALE=0.05 ./build/bench/table3_unknown_classes   (or use the
//   Corpus::materialize API), then point ROOT at it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>

#include "core/classifier.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"
#include "util/io_util.hpp"

using namespace fhc;

namespace {

/// Trace-file suffixes recognized next to a sample executable.
constexpr const char* kTraceSuffixes[] = {".trace", ".trace.csv", ".trace.json"};

bool is_trace_file(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  for (const char* suffix : kTraceSuffixes) {
    if (name.ends_with(suffix)) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool binary = false;
  bool runtime = false;
  bool calibrate = false;
  double target_fpr = 0.05;
  while (argc > 1) {
    if (std::strcmp(argv[1], "--binary") == 0) {
      binary = true;
    } else if (std::strcmp(argv[1], "--runtime") == 0) {
      runtime = true;
    } else if (std::strcmp(argv[1], "--calibrate") == 0) {
      calibrate = true;
    } else if (std::strncmp(argv[1], "--calibrate=", 12) == 0) {
      calibrate = true;
      target_fpr = std::atof(argv[1] + 12);
      if (target_fpr < 0.0 || target_fpr > 1.0) {
        std::fprintf(stderr, "fhc_train: --calibrate FPR must be in [0,1]\n");
        return 2;
      }
    } else {
      break;
    }
    --argc;
    ++argv;
  }
  if (argc < 3 || argc > 5) {
    std::fprintf(stderr,
                 "usage: fhc_train [--binary] [--runtime] [--calibrate[=FPR]] "
                 "ROOT MODEL [threshold=0.3] [n_trees=200]\n");
    return 2;
  }
  const std::filesystem::path root = argv[1];
  const std::string model_path = argv[2];
  const double threshold = argc > 3 ? std::atof(argv[3]) : 0.3;
  const int n_trees = argc > 4 ? std::atoi(argv[4]) : 200;

  std::vector<core::FeatureHashes> hashes;
  std::vector<int> labels;
  std::vector<std::string> class_names;
  std::map<std::string, int> label_of;
  std::size_t stripped = 0;
  std::size_t traced = 0;

  try {
    for (const auto& path : util::list_files(root)) {
      if (runtime && is_trace_file(path)) continue;  // sidecar, not a sample
      const auto relative = std::filesystem::relative(path, root);
      if (relative.begin() == relative.end()) continue;
      const std::string class_name = relative.begin()->string();
      const auto image = util::read_file(path);
      core::FeatureHashes sample = core::extract_feature_hashes(image);
      if (!sample.has_symbols) ++stripped;
      if (runtime) {
        for (const char* suffix : kTraceSuffixes) {
          const std::string trace_path = path.string() + suffix;
          if (!std::filesystem::exists(trace_path)) continue;
          runtime::attach_trace(sample, runtime::load_trace_file(trace_path));
          ++traced;
          break;
        }
      }
      const auto [it, inserted] =
          label_of.try_emplace(class_name, static_cast<int>(class_names.size()));
      if (inserted) class_names.push_back(class_name);
      hashes.push_back(std::move(sample));
      labels.push_back(it->second);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_train: %s\n", e.what());
    return 1;
  }
  if (hashes.empty()) {
    std::fprintf(stderr, "fhc_train: no samples under %s\n", root.c_str());
    return 1;
  }
  if (runtime) {
    std::printf("collected %zu samples in %zu classes (%zu stripped, %zu traced)\n",
                hashes.size(), class_names.size(), stripped, traced);
  } else {
    std::printf("collected %zu samples in %zu classes (%zu stripped)\n",
                hashes.size(), class_names.size(), stripped);
  }

  core::ClassifierConfig config;
  config.forest.n_estimators = n_trees;
  config.confidence_threshold = threshold;
  if (calibrate) {
    config.calibrate_rejection = true;
    config.calibration_target_fpr = target_fpr;
  }
  if (runtime) config.channel_set = runtime::runtime_channel_set();
  core::FuzzyHashClassifier classifier;
  try {
    classifier.fit(hashes, labels, class_names, config);
    if (binary) {
      classifier.save_binary_file(model_path);
    } else {
      classifier.save_file(model_path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_train: %s\n", e.what());
    return 1;
  }
  const auto importance = classifier.channel_importance();
  const core::ChannelSet& channels = classifier.index().channels();
  std::printf("%s model written to %s (threshold %.2f, %d trees)\n",
              binary ? "binary" : "text", model_path.c_str(), threshold, n_trees);
  if (calibrate) {
    const core::RejectionCalibration& cal = classifier.calibration();
    std::printf("calibrated unknown threshold %.4f (target FPR %.3f, %u held out)\n",
                cal.threshold, cal.target_fpr, cal.holdout_count);
  }
  std::printf("channel importance:");
  for (std::size_t f = 0; f < channels.size(); ++f) {
    std::printf("%s %s %.3f", f == 0 ? "" : ",", channels[f].name.c_str(),
                importance[f]);
  }
  std::printf("\n");
  return 0;
}
