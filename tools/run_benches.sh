#!/usr/bin/env sh
# Run the two perf baselines and emit machine-readable results:
#   BENCH_perf_ssdeep.json and BENCH_perf_forest.json in the current
#   directory (google-benchmark JSON format).
#
# Usage: tools/run_benches.sh [BUILD_DIR]   (default: build)
#
# Builds the targets first if the build dir is configured, so a fresh
# checkout only needs `cmake -B build -S .` before calling this.
set -eu

BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "error: '$BUILD_DIR' is not a configured build dir (run: cmake -B $BUILD_DIR -S .)" >&2
  exit 2
fi

cmake --build "$BUILD_DIR" --target perf_ssdeep perf_forest

for name in perf_ssdeep perf_forest; do
  echo "== $name -> BENCH_${name}.json"
  "$BUILD_DIR/bench/$name" \
    --benchmark_out="BENCH_${name}.json" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true
done
