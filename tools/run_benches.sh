#!/usr/bin/env sh
# Run the perf baselines and emit machine-readable results:
#   BENCH_perf_ssdeep.json, BENCH_perf_forest.json and
#   BENCH_perf_service.json in the current directory (google-benchmark
#   JSON format).
#
# Usage: tools/run_benches.sh [BUILD_DIR]   (default: build)
#
# Builds the targets first if the build dir is configured, so a fresh
# checkout only needs `cmake -B build -S .` before calling this.
set -eu

BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "error: '$BUILD_DIR' is not a configured build dir (run: cmake -B $BUILD_DIR -S .)" >&2
  exit 2
fi

cmake --build "$BUILD_DIR" --target perf_ssdeep perf_forest perf_service

for name in perf_ssdeep perf_forest perf_service; do
  echo "== $name -> BENCH_${name}.json"
  "$BUILD_DIR/bench/$name" \
    --benchmark_out="BENCH_${name}.json" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true
done

# The perf trajectory tracks the prepared-digest path from PR 2 on: fail
# loudly if the prepared-vs-raw compare pair or the feature-matrix bench
# ever drop out of the ssdeep baseline. PR 5 on: the GramIndex
# candidate-driven fill must keep its pair against the prepared all-pairs
# baseline (BM_FeatureRowIndexed vs BM_FeatureRowPrepared). PR 7 on: the
# runtime channel — trace fingerprint+hash cost, and the three-vs-four
# channel row-fill pair (BM_FeatureRowIndexed vs
# BM_FeatureRowIndexedFourChannel).
for required in \
    BM_CompareUnrelatedDigests BM_ComparePreparedUnrelatedDigests \
    BM_CompareRelatedDigests BM_ComparePreparedRelatedDigests \
    BM_PrepareDigest BM_FeatureRowPrepared BM_FeatureRowIndexed \
    BM_FeatureRowRawLoop BM_RuntimeTraceHash \
    BM_FeatureRowIndexedFourChannel; do
  if ! grep -q "\"$required\"" BENCH_perf_ssdeep.json; then
    echo "error: BENCH_perf_ssdeep.json is missing $required" >&2
    exit 1
  fi
done

# PR 3 on: the batched-vs-unbatched service throughput pair and the
# serial-vs-parallel forest train-time pair must stay in the baselines.
#
# PR 8 on: the socket front-end pair — the in-process submit baseline vs
# the epoll wire path at 1/8/64 pipelined connections (p50/p99 counters
# are the client-observed per-request latency).
for required in \
    BM_PredictUnbatched/32/real_time BM_ServiceBatchRepeatDedup/32/real_time \
    BM_ServiceBatchRepeatStream/32/real_time BM_ServiceBatchUnique/32/real_time \
    BM_ServiceShards/1/real_time BM_ServiceCacheHit/real_time \
    BM_ServiceSubmitInProcess/real_time BM_ServeSocketPipelined/1/real_time \
    BM_ServeSocketPipelined/8/real_time BM_ServeSocketPipelined/64/real_time; do
  if ! grep -q "\"$required\"" BENCH_perf_service.json; then
    echo "error: BENCH_perf_service.json is missing $required" >&2
    exit 1
  fi
done
# PR 4 on: the FlatForest block-inference sweep against the per-row
# baseline and the text-vs-binary model load pair must stay in the
# baselines (batched forest inference + zero-copy reload trajectory).
# PR 5 on: the leaf-accumulate pair (scalar baseline vs the restructured
# primitive) tracks the block walk's accumulation bound.
# PR 6 on: the whole-model reload pair — v1 rebuild vs v2 zero-copy
# attach at both corpus scales (the /48 points show v1 growing with the
# corpus while attach stays flat).
for required in \
    BM_ForestFit/1024 BM_ForestFitSerial/1024 \
    BM_ForestPredictProba BM_ForestPredictBlock/1 BM_ForestPredictBlock/8 \
    BM_ForestPredictBlock/64 BM_ModelLoadText BM_ModelLoadBinary \
    BM_LeafAccumulateScalar BM_LeafAccumulate \
    BM_ModelLoadBinaryV1/12 BM_ModelLoadBinaryV1/48 \
    BM_ModelAttachV2/12 BM_ModelAttachV2/48; do
  if ! grep -q "\"$required\"" BENCH_perf_forest.json; then
    echo "error: BENCH_perf_forest.json is missing $required" >&2
    exit 1
  fi
done
