// fhc-loadgen: pipelined load generator for the fhc_serve socket
// front-end.
//
//   fhc_loadgen (--unix PATH | --tcp [HOST:]PORT) [options] FILE[@TRACE]...
//
// Hashes each FILE locally (the CLASSIFY_DIGESTS fast path — the daemon
// never touches the filesystem), then drives N pipelined connections
// that cycle through the request set, and reports throughput and
// client-observed latency percentiles:
//
//   sent=512 predictions=512 busy=0 errors=0 elapsed_s=0.041
//   rps=12428.7 p50_ms=3.1 p99_ms=8.9 max_ms=11.2
//
// options:
//   --connections N   concurrent connections (default 4)
//   --pipeline N      frames in flight per connection (default 8)
//   --requests N      frames per connection (default 64)
//   --retries N       retry budget (default 40): connect retries 50 ms
//                     apart, plus per-request re-send of BUSY replies and
//                     reconnect-and-replay of transport faults, both with
//                     exponential backoff + jitter
//   --backoff-ms N    base retry backoff (default 5; doubles per attempt,
//                     capped at 1s, jittered)
//   --deadline-ms N   attach an N ms deadline to every CLASSIFY frame;
//                     work the daemon cannot start in time comes back as
//                     DEADLINE_EXCEEDED instead of queueing
//   --recv-timeout-ms N  bound every blocking read (chaos runs)
//   --stats           print the daemon's STATS line after the run
//   --quit            send QUIT after the run (graceful daemon shutdown)
//   --expect-all      exit nonzero unless every reply is a PREDICTION
//                     (i.e. no BUSY/ERROR)
//   --expect-known    exit nonzero if any PREDICTION reply carries the
//                     is_unknown flag — asserts the daemon did not
//                     silently force-label (or silently reject) samples
//                     it was trained on
//
// Exit codes: 0 success, 1 transport failure or missing replies (or any
// non-prediction reply under --expect-all, or any unknown-flagged
// prediction under --expect-known), 2 usage error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"
#include "util/io_util.hpp"

using namespace fhc;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: fhc_loadgen (--unix PATH | --tcp [HOST:]PORT) [options] "
      "FILE[@TRACE]...\n"
      "  --connections N  concurrent connections (default 4)\n"
      "  --pipeline N     frames in flight per connection (default 8)\n"
      "  --requests N     frames per connection (default 64)\n"
      "  --retries N      retry budget: connect + BUSY re-send + reconnect\n"
      "  --backoff-ms N   base retry backoff (default 5, exponential+jitter)\n"
      "  --deadline-ms N  per-request deadline attached to every frame\n"
      "  --recv-timeout-ms N  bound every blocking read\n"
      "  --stats          print the daemon STATS line after the run\n"
      "  --quit           send QUIT after the run (daemon shuts down)\n"
      "  --expect-all     fail unless every reply is a PREDICTION\n"
      "  --expect-known   fail if any prediction is flagged unknown\n");
  return 2;
}

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

bool parse_tcp_spec(const std::string& spec, std::string& host, int& port) {
  const std::size_t colon = spec.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || value < 0 || value > 65535) {
    return false;
  }
  if (colon != std::string::npos) host = spec.substr(0, colon);
  port = static_cast<int>(value);
  return true;
}

/// Hashes one FILE[@TRACE] spec into a CLASSIFY_DIGESTS frame.
bool encode_sample_frame(const std::string& spec, std::string& frame,
                         std::optional<std::uint32_t> deadline_ms,
                         std::string& error) {
  try {
    const std::size_t at = spec.rfind('@');
    const auto image =
        util::read_file(at == std::string::npos ? spec : spec.substr(0, at));
    core::FeatureHashes sample = core::extract_feature_hashes(image);
    if (at != std::string::npos) {
      runtime::attach_trace(sample, runtime::load_trace_file(spec.substr(at + 1)));
    }
    std::vector<std::string> digests;
    digests.reserve(sample.channel_count());
    for (std::size_t i = 0; i < sample.channel_count(); ++i) {
      digests.push_back(sample.channel(i).to_string());
    }
    net::encode_classify_digests(frame, digests, deadline_ms);
    return true;
  } catch (const std::exception& e) {
    error = spec + ": " + e.what();
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  net::LoadOptions options;
  options.connections = 4;
  options.pipeline = 8;
  options.requests = 64;
  options.connect_retries = 40;
  bool want_stats = false;
  bool want_quit = false;
  bool expect_all = false;
  bool expect_known = false;
  std::optional<std::uint32_t> deadline_ms;
  std::vector<std::string> specs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--unix") {
      const char* path = value();
      if (path == nullptr) return usage();
      options.endpoint.unix_path = path;
    } else if (arg == "--tcp") {
      const char* spec = value();
      if (spec == nullptr ||
          !parse_tcp_spec(spec, options.endpoint.host, options.endpoint.port)) {
        return usage();
      }
    } else if (arg == "--connections") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, options.connections) ||
          options.connections == 0) {
        return usage();
      }
    } else if (arg == "--pipeline") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, options.pipeline) ||
          options.pipeline == 0) {
        return usage();
      }
    } else if (arg == "--requests") {
      const char* text = value();
      if (text == nullptr || !parse_size(text, options.requests) ||
          options.requests == 0) {
        return usage();
      }
    } else if (arg == "--retries") {
      std::size_t retries = 0;
      const char* text = value();
      if (text == nullptr || !parse_size(text, retries)) return usage();
      options.connect_retries = static_cast<int>(retries);
      options.retries = static_cast<int>(retries);
    } else if (arg == "--backoff-ms") {
      std::size_t backoff = 0;
      const char* text = value();
      if (text == nullptr || !parse_size(text, backoff)) return usage();
      options.backoff_ms = static_cast<int>(backoff);
    } else if (arg == "--deadline-ms") {
      std::size_t deadline = 0;
      const char* text = value();
      if (text == nullptr || !parse_size(text, deadline) || deadline == 0) {
        return usage();
      }
      deadline_ms = static_cast<std::uint32_t>(deadline);
    } else if (arg == "--recv-timeout-ms") {
      std::size_t timeout = 0;
      const char* text = value();
      if (text == nullptr || !parse_size(text, timeout)) return usage();
      options.recv_timeout_ms = static_cast<int>(timeout);
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--quit") {
      want_quit = true;
    } else if (arg == "--expect-all") {
      expect_all = true;
    } else if (arg == "--expect-known") {
      expect_known = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fhc_loadgen: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      specs.push_back(arg);
    }
  }
  if (options.endpoint.unix_path.empty() && options.endpoint.port < 0) {
    std::fprintf(stderr, "fhc_loadgen: need --unix or --tcp\n");
    return usage();
  }
  if (specs.empty()) {
    std::fprintf(stderr, "fhc_loadgen: need at least one FILE\n");
    return usage();
  }

  std::vector<std::string> frames;
  frames.reserve(specs.size());
  for (const std::string& spec : specs) {
    std::string frame;
    std::string error;
    if (!encode_sample_frame(spec, frame, deadline_ms, error)) {
      std::fprintf(stderr, "fhc_loadgen: %s\n", error.c_str());
      return 1;
    }
    frames.push_back(std::move(frame));
  }

  const net::LoadResult result = net::run_load(options, frames);
  const double rps =
      result.elapsed_s > 0.0 ? result.replies() / result.elapsed_s : 0.0;
  std::printf(
      "sent=%zu predictions=%zu unknown=%zu busy=%zu errors=%zu "
      "deadline_exceeded=%zu busy_retries=%zu reconnects=%zu elapsed_s=%.3f\n"
      "rps=%.1f p50_ms=%.2f p99_ms=%.2f max_ms=%.2f\n",
      result.sent, result.predictions, result.unknown, result.busy,
      result.errors, result.deadline_exceeded, result.busy_retries,
      result.reconnects, result.elapsed_s, rps, result.p50_ms, result.p99_ms,
      result.max_ms);

  if (!result.ok()) {
    std::fprintf(stderr, "fhc_loadgen: %s\n", result.failure.c_str());
    return 1;
  }

  // Control frames ride one extra connection after the measured run.
  if (want_stats || want_quit) {
    net::BlockingClient client;
    const std::string connect_error =
        client.connect(options.endpoint, options.connect_retries);
    if (!connect_error.empty()) {
      std::fprintf(stderr, "fhc_loadgen: %s\n", connect_error.c_str());
      return 1;
    }
    std::string bytes;
    if (want_stats) net::encode_stats(bytes);
    if (want_quit) net::encode_quit(bytes);
    if (!client.send_bytes(bytes)) {
      std::fprintf(stderr, "fhc_loadgen: control send failed\n");
      return 1;
    }
    net::Response response;
    std::string error;
    if (want_stats) {
      if (!client.read_response(response, &error) ||
          response.op != net::Opcode::kStatsText) {
        std::fprintf(stderr, "fhc_loadgen: STATS failed: %s\n", error.c_str());
        return 1;
      }
      std::printf("%s\n", response.text.c_str());
    }
    if (want_quit) {
      if (!client.read_response(response, &error) ||
          response.op != net::Opcode::kOk) {
        std::fprintf(stderr, "fhc_loadgen: QUIT failed: %s\n", error.c_str());
        return 1;
      }
    }
  }

  if (expect_all && (result.busy > 0 || result.errors > 0)) {
    std::fprintf(stderr,
                 "fhc_loadgen: --expect-all: %zu busy, %zu error replies\n",
                 result.busy, result.errors);
    return 1;
  }
  if (expect_known && result.unknown > 0) {
    std::fprintf(stderr,
                 "fhc_loadgen: --expect-known: %zu of %zu predictions "
                 "flagged unknown\n",
                 result.unknown, result.predictions);
    return 1;
  }
  return 0;
}
