// fhc-serve: resident classification daemon.
//
//   fhc_serve MODEL [max_batch] [cache_capacity]          (legacy stdio form)
//   fhc_serve MODEL [--stdio] [--unix PATH] [--tcp [HOST:]PORT] [options]
//
// Loads the model once and serves it through one or both front-ends:
//
// stdio (default when no socket is configured, or explicit --stdio): the
// line protocol a Slurm prolog drives through a pipe or FIFO —
//
//   CLASSIFY <path>...   one reply line per path, in order:
//                          "<label>\t<confidence>"  (label -1 = unknown)
//                        or "ERR <message>" for that path.
//                        <path> may be "exe@trace": the perf-stat counter
//                        trace is fingerprinted into the model's
//                        ssdeep-runtime channel (fhc_train --runtime).
//   STATS                one line of key=value service counters
//   RELOAD <model>       swap the model without dropping in-flight work:
//                          "OK <model>" or "ERR <message>"
//   QUIT                 "OK bye", exit 0
//
// sockets (--unix and/or --tcp): the framed binary protocol in
// src/net/protocol.hpp — pipelined CLASSIFY_DIGESTS / CLASSIFY_PATH /
// STATS / RELOAD / PING / QUIT over an epoll event loop, with admission
// control (BUSY frames instead of unbounded queues). One daemon serves
// thousands of connections; SIGINT/SIGTERM and the QUIT frame drain
// gracefully. Both front-ends share the same command core, so replies
// are bit-identical to the stdio protocol's.
//
// MODEL may be the text format or the binary format (`fhc_train
// --binary`); the loader sniffs the magic. Binary models are mmap'd and
// the forest is attached zero-copy, so a RELOAD skips the text re-parse
// entirely — the recommended format for production daemons.
//
// Exit codes: 0 clean shutdown, 1 model load / bind error, 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/classifier.hpp"
#include "net/server.hpp"
#include "service/command_handler.hpp"
#include "service/service.hpp"
#include "util/fault_inject.hpp"

using namespace fhc;

namespace {

/// Parses a non-negative integer argument; false on junk or negatives.
bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

/// "[HOST:]PORT" -> host/port; false on junk.
bool parse_tcp_spec(const std::string& spec, std::string& host, int& port) {
  const std::size_t colon = spec.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || value < 0 || value > 65535) {
    return false;
  }
  if (colon != std::string::npos) host = spec.substr(0, colon);
  port = static_cast<int>(value);
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fhc_serve MODEL [max_batch=32] [cache_capacity=4096]   (stdio)\n"
      "       fhc_serve MODEL [front-ends] [options]\n"
      "front-ends (default --stdio; sockets may combine, stdio may not):\n"
      "  --stdio               line protocol on stdin/stdout (FIFO-friendly)\n"
      "  --unix PATH           framed binary protocol on a Unix socket\n"
      "  --tcp [HOST:]PORT     framed binary protocol on TCP (default host\n"
      "                        127.0.0.1; port 0 = ephemeral, printed on stderr)\n"
      "options:\n"
      "  --max-batch N         micro-batch size (default 32)\n"
      "  --cache N             prediction cache capacity (default 4096)\n"
      "  --max-queue N         service queue bound; over -> BUSY (default 1024,\n"
      "                        0 = unbounded)\n"
      "  --unknown-threshold T open-set floor: predictions under max-prob T\n"
      "                        are flagged unknown (overrides the model's\n"
      "                        calibrated threshold; survives RELOAD)\n"
      "  --max-connections N   concurrent sockets; over -> BUSY+close (1024)\n"
      "  --max-inflight N      classify requests in flight server-wide (4096)\n"
      "  --pipeline-depth N    replies in flight per connection; over -> BUSY (64)\n"
      "  --max-queue-delay-ms N  shed queued work older than N ms with\n"
      "                        DEADLINE_EXCEEDED before scoring (0 = off)\n"
      "  --idle-timeout-ms N   evict sockets idle for N ms (0 = off)\n"
      "  --read-timeout-ms N   evict sockets stuck mid-frame for N ms (0 = off;\n"
      "                        catches slow-loris tricklers)\n"
      "fault injection: set FHC_FAULT (e.g. \"read:nth=3;accept:p=0.01\") and\n"
      "FHC_FAULT_SEED to schedule deterministic syscall faults in this daemon\n"
      "(the chaos harness drives the shipped binary this way).\n"
      "stdio protocol (one reply line per request):\n"
      "  CLASSIFY <path[@trace]>...  ->  <label>\\t<confidence> | ERR <msg>\n"
      "  STATS               ->  key=value counters\n"
      "  RELOAD <model>      ->  OK <model> | ERR <msg>\n"
      "  QUIT                ->  OK bye\n"
      "socket wire format: see README \"Socket server\" (u32le-framed binary).\n");
  return 2;
}

net::SocketServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string model_path = argv[1];

  service::ServiceConfig service_config;
  service_config.max_queue = 1024;
  net::ServerConfig server_config;
  bool want_stdio = false;
  bool want_socket = false;
  bool have_unknown_threshold = false;
  double unknown_threshold = 0.0;

  // Legacy positional form: MODEL [max_batch] [cache_capacity], stdio.
  const bool legacy = argc <= 4 && (argc < 3 || argv[2][0] != '-');
  if (legacy) {
    want_stdio = true;
    if (argc > 2 &&
        (!parse_size(argv[2], service_config.max_batch) ||
         service_config.max_batch == 0)) {
      std::fprintf(stderr, "fhc_serve: bad max_batch '%s'\n", argv[2]);
      return usage();
    }
    if (argc > 3 && !parse_size(argv[3], service_config.cache_capacity)) {
      std::fprintf(stderr, "fhc_serve: bad cache_capacity '%s'\n", argv[3]);
      return usage();
    }
  } else {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        return ++i < argc ? argv[i] : nullptr;
      };
      if (arg == "--stdio") {
        want_stdio = true;
      } else if (arg == "--unix") {
        const char* path = value();
        if (path == nullptr) return usage();
        server_config.unix_path = path;
        want_socket = true;
      } else if (arg == "--tcp") {
        const char* spec = value();
        if (spec == nullptr ||
            !parse_tcp_spec(spec, server_config.tcp_host, server_config.tcp_port)) {
          std::fprintf(stderr, "fhc_serve: bad --tcp spec\n");
          return usage();
        }
        want_socket = true;
      } else if (arg == "--max-batch") {
        const char* text = value();
        if (text == nullptr || !parse_size(text, service_config.max_batch) ||
            service_config.max_batch == 0) {
          return usage();
        }
      } else if (arg == "--cache") {
        const char* text = value();
        if (text == nullptr || !parse_size(text, service_config.cache_capacity)) {
          return usage();
        }
      } else if (arg == "--max-queue") {
        const char* text = value();
        if (text == nullptr || !parse_size(text, service_config.max_queue)) {
          return usage();
        }
      } else if (arg == "--unknown-threshold") {
        const char* text = value();
        char* end = nullptr;
        unknown_threshold = text != nullptr ? std::strtod(text, &end) : 0.0;
        if (text == nullptr || end == text || *end != '\0' ||
            unknown_threshold < 0.0 || unknown_threshold > 1.0) {
          std::fprintf(stderr,
                       "fhc_serve: --unknown-threshold must be in [0,1]\n");
          return usage();
        }
        have_unknown_threshold = true;
      } else if (arg == "--max-connections") {
        const char* text = value();
        if (text == nullptr || !parse_size(text, server_config.max_connections)) {
          return usage();
        }
      } else if (arg == "--max-inflight") {
        const char* text = value();
        if (text == nullptr || !parse_size(text, server_config.max_inflight)) {
          return usage();
        }
      } else if (arg == "--pipeline-depth") {
        const char* text = value();
        if (text == nullptr || !parse_size(text, server_config.max_pipeline)) {
          return usage();
        }
      } else if (arg == "--max-queue-delay-ms") {
        const char* text = value();
        std::size_t delay = 0;
        if (text == nullptr || !parse_size(text, delay)) return usage();
        service_config.max_queue_delay = std::chrono::milliseconds(delay);
      } else if (arg == "--idle-timeout-ms") {
        const char* text = value();
        std::size_t timeout = 0;
        if (text == nullptr || !parse_size(text, timeout)) return usage();
        server_config.idle_timeout_ms = static_cast<int>(timeout);
      } else if (arg == "--read-timeout-ms") {
        const char* text = value();
        std::size_t timeout = 0;
        if (text == nullptr || !parse_size(text, timeout)) return usage();
        server_config.read_progress_timeout_ms = static_cast<int>(timeout);
      } else {
        std::fprintf(stderr, "fhc_serve: unknown option '%s'\n", arg.c_str());
        return usage();
      }
    }
    if (!want_stdio && !want_socket) want_stdio = true;
    if (want_stdio && want_socket) {
      std::fprintf(stderr,
                   "fhc_serve: --stdio cannot combine with socket front-ends\n");
      return usage();
    }
  }

#ifdef SIGPIPE
  // Replies often go to a FIFO or a vanished client; neither must kill
  // the node's resident daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  // Chaos harness hook: FHC_FAULT schedules deterministic syscall faults
  // in the shipped binary (ci_chaos_smoke.sh drives this).
  {
    std::string fault_error;
    if (util::FaultInjector::instance().arm_from_env(fault_error)) {
      std::fprintf(stderr, "fhc_serve: fault injection armed (FHC_FAULT=%s)\n",
                   std::getenv("FHC_FAULT"));
    } else if (!fault_error.empty()) {
      std::fprintf(stderr, "fhc_serve: bad FHC_FAULT: %s\n", fault_error.c_str());
      return 2;
    }
  }

  std::unique_ptr<service::ClassificationService> svc;
  try {
    core::FuzzyHashClassifier model =
        core::FuzzyHashClassifier::load_file(model_path);
    if (have_unknown_threshold) model.set_unknown_threshold(unknown_threshold);
    svc = std::make_unique<service::ClassificationService>(std::move(model),
                                                           service_config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_serve: %s\n", e.what());
    return 1;
  }
  service::CommandHandler handler(*svc);
  // RELOAD must re-apply the deployment knob to the fresh model.
  if (have_unknown_threshold) {
    handler.set_unknown_threshold_override(unknown_threshold);
  }

  if (want_stdio) {
    std::fprintf(stderr, "fhc_serve: model %s loaded, ready (stdio)\n",
                 model_path.c_str());
    std::string line;
    while (std::getline(std::cin, line)) {
      const bool keep_going = handler.handle_line(line, std::cout);
      std::cout.flush();
      if (!keep_going) return 0;
    }
    return 0;  // EOF on stdin exits cleanly
  }

  std::unique_ptr<net::SocketServer> server;
  try {
    server = std::make_unique<net::SocketServer>(handler, server_config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_serve: %s\n", e.what());
    return 1;
  }
  if (!server->unix_socket_path().empty()) {
    std::fprintf(stderr, "fhc_serve: listening on unix:%s\n",
                 server->unix_socket_path().c_str());
  }
  if (server->tcp_port() >= 0) {
    std::fprintf(stderr, "fhc_serve: listening on tcp:%s:%d\n",
                 server_config.tcp_host.c_str(), server->tcp_port());
  }
  std::fprintf(stderr, "fhc_serve: model %s loaded, ready\n", model_path.c_str());

  g_server = server.get();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  server->run();  // returns after graceful drain (QUIT frame or signal)
  g_server = nullptr;
  std::fprintf(stderr, "fhc_serve: drained, bye\n");
  return 0;
}
