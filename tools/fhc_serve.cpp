// fhc-serve: resident classification daemon for prolog scripts.
//
//   fhc_serve MODEL [max_batch] [cache_capacity]
//
// Loads the model once and answers a line-oriented protocol on
// stdin/stdout, so a Slurm prolog talks to one hot process instead of
// paying a model load per job:
//
//   CLASSIFY <path>...   one reply line per path, in order:
//                          "<label>\t<confidence>"  (label -1 = unknown)
//                        or "ERR <message>" for that path.
//                        <path> may be "exe@trace": the perf-stat counter
//                        trace is fingerprinted into the model's
//                        ssdeep-runtime channel (fhc_train --runtime).
//   STATS                one line of key=value service counters
//   RELOAD <model>       swap the model without dropping in-flight work:
//                          "OK <model>" or "ERR <message>"
//   QUIT                 "OK bye", exit 0
//
// MODEL may be the text format or the binary format (`fhc_train
// --binary`); the loader sniffs the magic. Binary models are mmap'd and
// the forest is attached zero-copy, so a RELOAD skips the text re-parse
// entirely — the recommended format for production daemons.
//
// Replies are flushed per command; unknown commands answer "ERR ...".
// EOF on stdin exits cleanly. Exit codes: 0 clean shutdown, 1 model load
// error, 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/trace.hpp"
#include "service/service.hpp"
#include "util/io_util.hpp"

using namespace fhc;

namespace {

void handle_classify(service::ClassificationService& svc, std::istringstream& args,
                     std::ostream& out) {
  // Submit every path first so they land in one micro-batch, then collect
  // replies in order.
  std::vector<std::string> paths;
  std::vector<std::future<core::Prediction>> futures;
  std::vector<std::string> extract_errors;  // parallel to paths; empty = submitted
  std::string path;
  while (args >> path) {
    paths.push_back(path);
    extract_errors.emplace_back();
    try {
      const std::size_t at = path.rfind('@');
      const auto image =
          util::read_file(at == std::string::npos ? path : path.substr(0, at));
      core::FeatureHashes sample = core::extract_feature_hashes(image);
      if (at != std::string::npos) {
        runtime::attach_trace(sample,
                              runtime::load_trace_file(path.substr(at + 1)));
      }
      futures.push_back(svc.submit(std::move(sample)));
    } catch (const std::exception& e) {
      futures.emplace_back();  // placeholder, never read
      extract_errors.back() = e.what();
    }
  }
  if (paths.empty()) {
    out << "ERR CLASSIFY needs at least one path\n";
    return;
  }
  // One model snapshot for the whole reply. A prediction can in principle
  // outlive a RELOAD, so the label is range-checked against this
  // snapshot's class list and printed numerically when it cannot be named.
  const std::shared_ptr<const core::FuzzyHashClassifier> model = svc.model();
  const std::vector<std::string>& names = model->class_names();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!extract_errors[i].empty()) {
      out << "ERR " << extract_errors[i] << '\n';
      continue;
    }
    try {
      const core::Prediction pred = futures[i].get();
      char line[64];
      std::snprintf(line, sizeof line, "%.4f", pred.confidence);
      if (pred.label >= 0 && static_cast<std::size_t>(pred.label) < names.size()) {
        out << names[static_cast<std::size_t>(pred.label)] << '\t' << line << '\n';
      } else {
        out << pred.label << '\t' << line << '\n';  // kUnknownLabel prints -1
      }
    } catch (const std::exception& e) {
      out << "ERR " << e.what() << '\n';
    }
  }
}

void handle_stats(const service::ClassificationService& svc, std::ostream& out) {
  const service::ServiceStats s = svc.stats();
  out << "requests=" << s.requests << " completed=" << s.completed
      << " batches=" << s.batches << " scored=" << s.scored
      << " cache_hits=" << s.cache_hits << " dedup_hits=" << s.dedup_hits
      << " cache_hit_rate=" << s.cache_hit_rate()
      << " candidates_scored=" << s.candidates_scored
      << " index_skipped=" << s.index_skipped
      << " index_skip_rate=" << s.index_skip_rate() << " reloads=" << s.reloads
      << " largest_batch=" << s.largest_batch << " p50_ms=" << s.p50_ms
      << " p99_ms=" << s.p99_ms << " max_ms=" << s.max_ms << '\n';
}

}  // namespace

namespace {

/// Parses a non-negative integer argument; false on junk or negatives.
bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: fhc_serve MODEL [max_batch=32] [cache_capacity=4096]\n"
                 "MODEL: text or binary (fhc_train --binary) — binary is\n"
                 "  mmap'd for zero-copy load/RELOAD\n"
                 "protocol (stdin -> stdout, one reply line per request):\n"
                 "  CLASSIFY <path[@trace]>...  ->  <label>\\t<confidence> | "
                 "ERR <msg>\n"
                 "  STATS               ->  key=value counters\n"
                 "  RELOAD <model>      ->  OK <model> | ERR <msg>\n"
                 "  QUIT                ->  OK bye\n");
    return 2;
  };
  if (argc < 2 || argc > 4) return usage();

#ifdef SIGPIPE
  // Replies often go to a FIFO; a reader that vanishes between request
  // and reply must not kill the node's resident daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  service::ServiceConfig config;
  if (argc > 2 && (!parse_size(argv[2], config.max_batch) || config.max_batch == 0)) {
    std::fprintf(stderr, "fhc_serve: bad max_batch '%s'\n", argv[2]);
    return usage();
  }
  if (argc > 3 && !parse_size(argv[3], config.cache_capacity)) {
    std::fprintf(stderr, "fhc_serve: bad cache_capacity '%s'\n", argv[3]);
    return usage();
  }

  std::unique_ptr<service::ClassificationService> svc;
  try {
    svc = std::make_unique<service::ClassificationService>(
        core::FuzzyHashClassifier::load_file(argv[1]), config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fhc_serve: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "fhc_serve: model %s loaded, ready\n", argv[1]);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream parts(line);
    std::string command;
    parts >> command;
    if (command.empty()) continue;
    if (command == "CLASSIFY") {
      handle_classify(*svc, parts, std::cout);
    } else if (command == "STATS") {
      handle_stats(*svc, std::cout);
    } else if (command == "RELOAD") {
      std::string model_path;
      if (!(parts >> model_path)) {
        std::cout << "ERR RELOAD needs a model path\n";
      } else {
        try {
          svc->reload(core::FuzzyHashClassifier::load_file(model_path));
          std::cout << "OK " << model_path << '\n';
        } catch (const std::exception& e) {
          std::cout << "ERR " << e.what() << '\n';
        }
      }
    } else if (command == "QUIT") {
      std::cout << "OK bye\n";
      std::cout.flush();
      return 0;
    } else {
      std::cout << "ERR unknown command: " << command << '\n';
    }
    std::cout.flush();
  }
  return 0;
}
