# Test / bench dependencies: prefer the system packages (the CI image ships
# libgtest-dev and libbenchmark-dev), fall back to FetchContent on bare
# machines so `cmake -B build -S .` works anywhere with network access.

include(FetchContent)

find_package(Threads REQUIRED)

find_package(GTest QUIET)
if(NOT GTest_FOUND)
  message(STATUS "fhc: system GTest not found, fetching googletest v1.14.0")
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()

find_package(benchmark QUIET)
if(NOT benchmark_FOUND)
  message(STATUS "fhc: system google-benchmark not found, fetching v1.8.3")
  FetchContent_Declare(benchmark
    URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
    URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(benchmark)
  # Every benchmark consumer is EXCLUDE_FROM_ALL; keep the fetched library
  # out of the default build too (FetchContent's own EXCLUDE_FROM_ALL
  # option needs CMake 3.28, above our 3.20 minimum).
  set_target_properties(benchmark benchmark_main PROPERTIES EXCLUDE_FROM_ALL TRUE)
endif()
