# fhc::flags — the one INTERFACE target every fhc target links. Consumers of
# the fhc library inherit the warning policy and sanitizer wiring through the
# library's PUBLIC link, so a target cannot accidentally opt out.

add_library(fhc_flags INTERFACE)
add_library(fhc::flags ALIAS fhc_flags)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(fhc_flags INTERFACE -Wall -Wextra -Werror)
elseif(MSVC)
  target_compile_options(fhc_flags INTERFACE /W4 /WX)
endif()

# FHC_SANITIZE is a semicolon list ("address;undefined"). Each entry becomes a
# -fsanitize=<name> on both compile and link so the whole graph — library,
# tests, tools, examples, benches — runs instrumented.
if(FHC_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "FHC_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()
  set(_fhc_san_flags "")
  foreach(_san IN LISTS FHC_SANITIZE)
    list(APPEND _fhc_san_flags "-fsanitize=${_san}")
  endforeach()
  list(APPEND _fhc_san_flags -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_compile_options(fhc_flags INTERFACE ${_fhc_san_flags})
  target_link_options(fhc_flags INTERFACE ${_fhc_san_flags})
  message(STATUS "fhc: sanitizers enabled: ${FHC_SANITIZE}")
endif()
