// Reproduces paper Figure 2: "Number of samples for 92 application classes
// on a logarithmic scale" — as a sorted table with a log-scaled ASCII bar.
#include <cstdio>

#include "core/report.hpp"
#include "corpus/app_spec.hpp"
#include "util/env.hpp"

int main() {
  using namespace fhc;
  const double scale = fhc::util::bench_scale();
  const auto specs = corpus::scaled_app_classes(scale);

  std::printf("Figure 2: Number of samples per application class "
              "(log-scale bars), scale %.2f\n", scale);
  std::printf("(paper full scale: 92 classes, 5333 samples; max class "
              "kentUtils=881, min=3)\n\n");
  std::printf("%s\n", core::render_class_sizes(specs).c_str());
  std::printf("classes: %zu, samples: %d\n", specs.size(),
              corpus::total_sample_count(specs));
  return 0;
}
