// google-benchmark throughput baselines for fhc::service — batched/sharded
// classification against the unbatched serial predict() loop the CLI used
// to run per invocation.
//
// The workload models the paper's Slurm-prolog deployment: a node screens
// every job launch, and launches repeat the same few executables (array
// jobs, parameter sweeps), so the reference stream here is 4x-repetitive.
// The pairs to read together (items_per_second):
//
//   BM_PredictUnbatched/32            serial predict() over the stream —
//                                     the pre-service baseline
//   BM_ServiceBatchRepeatDedup/32     cache OFF: micro-batch + in-batch
//                                     dedup + class-sharded rows
//   BM_ServiceBatchRepeatStream/32    cache ON: steady-state prolog
//                                     traffic (repeats answered from LRU)
//   BM_ServiceBatchUnique/N           cache OFF, all-distinct stream: the
//                                     sharding-only win (≈1x on 1 core,
//                                     scales with the pool on real nodes)
//   BM_ServiceShards/S                unique stream at fixed batch 32,
//                                     explicit shard counts
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/command_handler.hpp"
#include "service/service.hpp"
#include "support/synthetic_hashes.hpp"

namespace {

using namespace fhc;

struct ServiceBenchData {
  std::string model_text;  // FuzzyHashClassifier is move-only: clone via load
  std::vector<core::FeatureHashes> unique_pool;    // 256 distinct samples
  std::vector<core::FeatureHashes> repeat_stream;  // 4x-repetitive prolog mix

  core::FuzzyHashClassifier model() const {
    std::istringstream in(model_text);
    core::FuzzyHashClassifier clf;
    clf.load(in);
    return clf;
  }
};

// 6 classes x 16 training samples of the shared synthetic-hash corpus
// (the same-class-DP / cross-class-gate mix of the real pipeline), 40
// trees, 256 distinct queries.
const ServiceBenchData& bench_data() {
  static const ServiceBenchData data = [] {
    testsupport::SyntheticHashesParams params;
    params.classes = 6;
    params.per_class = 16;
    params.queries = 256;
    params.base_seed = 500;
    params.mutation_seed = 29;
    const testsupport::SyntheticHashes corpus =
        testsupport::make_synthetic_hashes(params);

    core::ClassifierConfig config;
    config.forest.n_estimators = 40;
    config.forest.seed = 5;
    config.confidence_threshold = 0.3;
    core::FuzzyHashClassifier clf;
    clf.fit(corpus.train, corpus.labels, {"A", "B", "C", "D", "E", "F"}, config);

    ServiceBenchData out;
    std::ostringstream text;
    clf.save(text);
    out.model_text = text.str();
    out.unique_pool = corpus.queries;

    // Prolog-shaped stream: windows of any size >= 4 see each distinct
    // binary 4 times (array jobs resubmitting the same executable).
    for (int i = 0; i < 128; ++i) {
      out.repeat_stream.push_back(out.unique_pool[static_cast<std::size_t>(i / 4) % 8]);
    }
    return out;
  }();
  return data;
}

std::vector<core::FeatureHashes> window(const std::vector<core::FeatureHashes>& pool,
                                        std::size_t& offset, std::size_t n) {
  std::vector<core::FeatureHashes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(pool[(offset + i) % pool.size()]);
  offset = (offset + n) % pool.size();
  return out;
}

service::ServiceConfig bench_config(std::size_t batch, std::size_t cache,
                                    std::size_t shards = 0) {
  service::ServiceConfig config;
  config.max_batch = batch;
  config.max_delay = std::chrono::milliseconds(50);  // flush on fill, not delay
  config.cache_capacity = cache;
  config.shards = shards;
  return config;
}

/// Baseline: what every prolog invocation paid before the service — a
/// serial predict() per sample, no batching, no dedup, no cache.
void BM_PredictUnbatched(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  const core::FuzzyHashClassifier clf = data.model();
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::size_t offset = 0;
  for (auto _ : state) {
    const auto samples = window(data.repeat_stream, offset, batch);
    for (const core::FeatureHashes& sample : samples) {
      benchmark::DoNotOptimize(clf.predict(sample));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_PredictUnbatched)->Arg(32)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Same stream, cache disabled: the win is micro-batching + in-batch
/// dedup + sharded rows alone.
void BM_ServiceBatchRepeatDedup(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  const auto batch = static_cast<std::size_t>(state.range(0));
  service::ClassificationService svc(data.model(),
                                     bench_config(batch, /*cache=*/0));
  std::size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.classify_batch(window(data.repeat_stream, offset, batch)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ServiceBatchRepeatDedup)->Arg(32)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Same stream with the LRU on: steady-state prolog traffic, where repeat
/// binaries skip scoring entirely.
void BM_ServiceBatchRepeatStream(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  const auto batch = static_cast<std::size_t>(state.range(0));
  service::ClassificationService svc(data.model(), bench_config(batch, 4096));
  std::size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.classify_batch(window(data.repeat_stream, offset, batch)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ServiceBatchRepeatStream)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// All-distinct stream, cache off: isolates batching + class sharding (the
/// multi-core win; on a single-core host this tracks the baseline).
void BM_ServiceBatchUnique(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  const auto batch = static_cast<std::size_t>(state.range(0));
  service::ClassificationService svc(data.model(), bench_config(batch, /*cache=*/0));
  std::size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.classify_batch(window(data.unique_pool, offset, batch)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ServiceBatchUnique)->Arg(8)->Arg(32)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Shard-count sweep at fixed batch 32 on the distinct stream.
void BM_ServiceShards(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  const auto shards = static_cast<std::size_t>(state.range(0));
  service::ClassificationService svc(data.model(),
                                     bench_config(32, /*cache=*/0, shards));
  std::size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.classify_batch(window(data.unique_pool, offset, 32)));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ServiceShards)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Pure cache path: one hot binary resubmitted (array-job steady state).
void BM_ServiceCacheHit(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  service::ClassificationService svc(data.model(), bench_config(32, 4096));
  benchmark::DoNotOptimize(svc.submit(data.unique_pool[0]).get());  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(data.unique_pool[0]).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCacheHit)->UseRealTime();

// ---- socket front-end (PR 8) ----------------------------------------------
// The pair to read together (items_per_second): the same steady-state
// stream submitted in-process vs through the epoll socket server's wire
// protocol — the delta is the framing + syscall + event-loop cost per
// request. BM_ServeSocketPipelined's p50/p99 counters are the
// client-observed per-request latency under N concurrent pipelined
// connections.

constexpr std::size_t kWireRequestsPerIteration = 256;

/// In-process baseline for the socket pair: direct submit() futures over
/// the steady-state stream (cache on — the socket side runs the same
/// config, so the delta isolates the wire).
void BM_ServiceSubmitInProcess(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  service::ClassificationService svc(data.model(), bench_config(32, 4096));
  // Warm the LRU: steady state is the cache-served stream, so the pair
  // isolates the wire overhead, not first-pass scoring (and not the
  // micro-batch delay a shallow pipeline would otherwise wait out).
  for (const core::FeatureHashes& sample : data.unique_pool) {
    benchmark::DoNotOptimize(svc.classify_batch({sample}));
  }
  std::size_t offset = 0;
  for (auto _ : state) {
    std::vector<std::future<core::Prediction>> futures;
    futures.reserve(kWireRequestsPerIteration);
    for (std::size_t i = 0; i < kWireRequestsPerIteration; ++i) {
      futures.push_back(svc.submit(data.unique_pool[offset]));
      offset = (offset + 1) % data.unique_pool.size();
    }
    for (std::future<core::Prediction>& future : futures) {
      benchmark::DoNotOptimize(future.get());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWireRequestsPerIteration));
}
BENCHMARK(BM_ServiceSubmitInProcess)->UseRealTime()->Unit(benchmark::kMillisecond);

/// The same stream through the socket server: N pipelined connections on
/// a Unix socket, CLASSIFY_DIGESTS frames, replies decoded client-side.
void BM_ServeSocketPipelined(benchmark::State& state) {
  const ServiceBenchData& data = bench_data();
  const auto connections = static_cast<std::size_t>(state.range(0));

  service::ClassificationService svc(data.model(), bench_config(32, 4096));
  // Same warm-LRU steady state as BM_ServiceSubmitInProcess.
  for (const core::FeatureHashes& sample : data.unique_pool) {
    benchmark::DoNotOptimize(svc.classify_batch({sample}));
  }
  service::CommandHandler handler(svc);
  net::ServerConfig server_config;
  server_config.unix_path =
      "/tmp/fhc_bench_" + std::to_string(::getpid()) + ".sock";
  net::SocketServer server(handler, server_config);
  server.start();

  std::vector<std::string> frames;
  frames.reserve(data.unique_pool.size());
  for (const core::FeatureHashes& sample : data.unique_pool) {
    std::vector<std::string> digests;
    for (std::size_t i = 0; i < sample.channel_count(); ++i) {
      digests.push_back(sample.channel(i).to_string());
    }
    std::string frame;
    net::encode_classify_digests(frame, digests);
    frames.push_back(std::move(frame));
  }

  net::LoadOptions options;
  options.endpoint.unix_path = server_config.unix_path;
  options.connections = connections;
  options.pipeline = 8;
  options.requests =
      std::max<std::size_t>(kWireRequestsPerIteration / connections, 1);
  options.connect_retries = 20;

  net::LoadResult last;
  for (auto _ : state) {
    last = net::run_load(options, frames);
    if (!last.ok()) {
      state.SkipWithError(last.failure.c_str());
      break;
    }
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(options.requests * connections));
  state.counters["p50_ms"] = last.p50_ms;
  state.counters["p99_ms"] = last.p99_ms;
  state.counters["max_ms"] = last.max_ms;

  server.stop();
  server.join();
}
BENCHMARK(BM_ServeSocketPipelined)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
