// Reproduces paper Table 3: "Class of Unknown Samples" — the 19 whole
// application classes held out of training (852 samples at full scale),
// plus the two-phase split totals (5333 -> 2688 train / 2645 test).
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/env.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::bench_scale();
  config.seed = fhc::util::bench_seed();

  const core::ExperimentData data = core::prepare_experiment(config);

  std::printf("Table 3: Class of Unknown Samples (scale %.2f)\n", config.scale);
  std::printf("(paper full scale: 19 classes, 852 samples)\n\n");
  std::printf("%s\n", core::render_unknown_classes(data).c_str());

  std::printf("Two-phase split totals:\n");
  std::printf("  samples          %zu  (paper: 5333)\n", data.hashes.size());
  std::printf("  training set     %zu  (paper: 2688)\n", data.train_indices.size());
  std::printf("  test set         %zu  (paper: 2645)\n", data.test_indices.size());
  std::printf("  unknown in test  %zu  (paper:  852)\n", data.split.unknown_test_count);
  std::printf("  known classes    %zu  (paper:    73)\n", data.model_class_names.size());
  return 0;
}
