// google-benchmark microbenchmarks for the SSDeep substrate: hashing
// throughput, digest comparison cost (gated vs DP path, raw vs prepared),
// edit distances, and the classifier's feature-row extraction. The
// prepared-vs-raw pairs quantify what PreparedDigest saves by normalizing
// each side once instead of on every comparison.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/feature_matrix.hpp"
#include "core/features.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/synthetic.hpp"
#include "ssdeep/compare.hpp"
#include "ssdeep/edit_distance.hpp"
#include "ssdeep/fuzzy_hash.hpp"
#include "ssdeep/prepared.hpp"
#include "util/rng.hpp"

namespace {

using namespace fhc;

std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::size_t n) {
  fhc::util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xff);
  return out;
}

void BM_FuzzyHash(benchmark::State& state) {
  const auto data = random_bytes(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::fuzzy_hash(std::span<const std::uint8_t>(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FuzzyHash)->Range(1 << 10, 1 << 22);

void BM_CompareRelatedDigests(benchmark::State& state) {
  // Related inputs: the DP edit distance actually runs.
  auto a = random_bytes(2, 100000);
  auto b = a;
  for (std::size_t i = 30000; i < 40000; ++i) b[i] ^= 0x5a;
  const auto da = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(a));
  const auto db = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::compare_digests(da, db));
  }
}
BENCHMARK(BM_CompareRelatedDigests);

void BM_CompareUnrelatedDigests(benchmark::State& state) {
  // Unrelated inputs: the common-7-gram gate rejects before the DP — the
  // fast path that dominates cross-class comparisons in the pipeline.
  const auto da = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(random_bytes(3, 100000)));
  const auto db = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(random_bytes(4, 100000)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::compare_digests(da, db));
  }
}
BENCHMARK(BM_CompareUnrelatedDigests);

void BM_ComparePreparedRelatedDigests(benchmark::State& state) {
  // Same digest pair as BM_CompareRelatedDigests, but both sides prepared
  // once up front — the DP still runs, only the per-call normalization and
  // gram packing disappear.
  auto a = random_bytes(2, 100000);
  auto b = a;
  for (std::size_t i = 30000; i < 40000; ++i) b[i] ^= 0x5a;
  const ssdeep::PreparedDigest da(ssdeep::fuzzy_hash(std::span<const std::uint8_t>(a)));
  const ssdeep::PreparedDigest db(ssdeep::fuzzy_hash(std::span<const std::uint8_t>(b)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::compare_prepared(da, db));
  }
}
BENCHMARK(BM_ComparePreparedRelatedDigests);

void BM_ComparePreparedUnrelatedDigests(benchmark::State& state) {
  // The classifier's dominant case (cross-class pair, 7-gram gate
  // rejects): raw comparison re-runs eliminate_long_runs and re-packs and
  // re-sorts both gram arrays per call; prepared is a pure merge scan.
  const ssdeep::PreparedDigest da(
      ssdeep::fuzzy_hash(std::span<const std::uint8_t>(random_bytes(3, 100000))));
  const ssdeep::PreparedDigest db(
      ssdeep::fuzzy_hash(std::span<const std::uint8_t>(random_bytes(4, 100000))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::compare_prepared(da, db));
  }
}
BENCHMARK(BM_ComparePreparedUnrelatedDigests);

void BM_PrepareDigest(benchmark::State& state) {
  // One-time preparation cost — paid once per train digest per index
  // build, amortized over every comparison against it.
  const auto digest = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(random_bytes(12, 100000)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::PreparedDigest(digest));
  }
}
BENCHMARK(BM_PrepareDigest);

std::string random_digest_chars(std::uint64_t seed, std::size_t n) {
  static constexpr char kAlpha[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  fhc::util::Rng rng(seed);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(kAlpha[rng.next_below(64)]);
  return out;
}

void BM_DamerauOsa64(benchmark::State& state) {
  const std::string a = random_digest_chars(5, 64);
  const std::string b = random_digest_chars(6, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::damerau_levenshtein_osa(a, b));
  }
}
BENCHMARK(BM_DamerauOsa64);

void BM_WeightedLevenshtein64(benchmark::State& state) {
  const std::string a = random_digest_chars(7, 64);
  const std::string b = random_digest_chars(8, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::weighted_levenshtein(a, b));
  }
}
BENCHMARK(BM_WeightedLevenshtein64);

void BM_HasCommonSubstring(benchmark::State& state) {
  const std::string a = random_digest_chars(9, 64);
  const std::string b = random_digest_chars(10, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::has_common_substring(a, b));
  }
}
BENCHMARK(BM_HasCommonSubstring);

// --- feature-row extraction: the classifier's hot loop -----------------

struct FeatureBenchData {
  std::vector<core::FeatureHashes> train;
  std::vector<int> labels;
  std::unique_ptr<core::TrainIndex> owned_index;  // TrainIndex is immovable
  core::FeatureHashes query;
  const core::TrainIndex& index() const { return *owned_index; }
};

// The paper's realistic shape: 73 classes x 12 training samples; per
// class, variants of a shared base buffer that differ in one contiguous
// mutated window (the recompiled-binary pattern), so same-class pairs
// share 7-grams and genuinely run the DP edit distance, while
// cross-class pairs share nothing — the mix fill_feature_row sees in
// the real pipeline. At this width the all-pairs scan spends almost all
// its time merge-scanning cross-class digests that provably score 0;
// the GramIndex probe never visits them, so the indexed fill's cost is
// the probe plus the same-class DP both paths must pay.
const FeatureBenchData& feature_bench_data() {
  static const FeatureBenchData data = [] {
    constexpr int kClasses = 73;
    constexpr int kPerClass = 12;
    constexpr std::size_t kFileSize = 60000;
    constexpr std::size_t kWindow = 6000;
    fhc::util::Rng rng(13);
    std::vector<core::FeatureHashes> train;
    std::vector<int> labels;
    std::vector<std::vector<std::uint8_t>> bases;
    for (int c = 0; c < kClasses; ++c) {
      bases.push_back(random_bytes(100 + static_cast<std::uint64_t>(c), kFileSize));
    }
    const auto variant = [&](int c, std::size_t start) {
      auto file = bases[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < kWindow; ++i) {
        file[(start + i) % file.size()] ^= static_cast<std::uint8_t>(rng() & 0xff);
      }
      core::FeatureHashes hashes;
      hashes.file = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(file));
      hashes.strings = ssdeep::fuzzy_hash(
          std::span<const std::uint8_t>(file).subspan(0, 20000));
      hashes.symbols = ssdeep::fuzzy_hash(
          std::span<const std::uint8_t>(file).subspan(20000, 20000));
      return hashes;
    };
    for (int c = 0; c < kClasses; ++c) {
      for (int v = 0; v < kPerClass; ++v) {
        train.push_back(variant(c, static_cast<std::size_t>(v) * 4391));
        labels.push_back(c);
      }
    }
    std::vector<std::string> names;
    for (int c = 0; c < kClasses; ++c) names.push_back("class" + std::to_string(c));
    auto index = std::make_unique<core::TrainIndex>(train, labels, std::move(names));
    // Held-out same-class query: a class-0 variant whose mutation window
    // none of the training variants used.
    core::FeatureHashes query = variant(0, 53123);
    return FeatureBenchData{std::move(train), std::move(labels), std::move(index),
                            std::move(query)};
  }();
  return data;
}

void BM_FeatureRowPrepared(benchmark::State& state) {
  // One feature row via the prepared all-pairs scan (the PR 2 baseline):
  // query normalized once per channel, train side prepared at index
  // build, whole buckets skipped on blocksize — but every digest in a
  // pairable bucket still pays its merge-scan gate.
  const FeatureBenchData& data = feature_bench_data();
  std::vector<float> row(static_cast<std::size_t>(3 * data.index().n_classes()));
  for (auto _ : state) {
    core::fill_feature_row_all_pairs(data.index(), data.query,
                                     ssdeep::EditMetric::kDamerauOsa, -1, row);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.train.size()) * 3);
}
BENCHMARK(BM_FeatureRowPrepared);

void BM_FeatureRowIndexed(benchmark::State& state) {
  // The same row via the GramIndex candidate probe: cross-class digests
  // that share no 7-gram with the query are never touched, so the row
  // cost collapses to the probe plus the few genuine candidates' DP.
  const FeatureBenchData& data = feature_bench_data();
  std::vector<float> row(static_cast<std::size_t>(3 * data.index().n_classes()));
  core::RowFillStats stats;
  for (auto _ : state) {
    core::fill_feature_row(data.index(), data.query,
                           ssdeep::EditMetric::kDamerauOsa, -1, row,
                           core::kAllChannels, &stats);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.train.size()) * 3);
  const auto iters = std::max<std::int64_t>(state.iterations(), 1);
  const auto visited = static_cast<double>(stats.candidates_scored + stats.index_skipped);
  state.counters["scored_per_row"] =
      static_cast<double>(stats.candidates_scored) / static_cast<double>(iters);
  state.counters["skip_rate"] =
      visited > 0.0 ? static_cast<double>(stats.index_skipped) / visited : 0.0;
}
BENCHMARK(BM_FeatureRowIndexed);

void BM_FeatureRowRawLoop(benchmark::State& state) {
  // The pre-PreparedDigest behaviour: compare_digests against every raw
  // train digest, re-normalizing both sides per pair.
  const FeatureBenchData& data = feature_bench_data();
  const int k = data.index().n_classes();
  std::vector<float> row(static_cast<std::size_t>(3 * k));
  for (auto _ : state) {
    for (int f = 0; f < 3; ++f) {
      const auto type = static_cast<core::FeatureType>(f);
      const ssdeep::FuzzyDigest& own = data.query.of(type);
      for (int c = 0; c < k; ++c) {
        int best = 0;
        for (const ssdeep::FuzzyDigest& candidate : data.index().digests(type, c)) {
          const int score = ssdeep::compare_digests(own, candidate);
          if (score > best) {
            best = score;
            if (best == 100) break;
          }
        }
        row[static_cast<std::size_t>(f * k + c)] = static_cast<float>(best);
      }
    }
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.train.size()) * 3);
}
BENCHMARK(BM_FeatureRowRawLoop);

void BM_RuntimeTraceHash(benchmark::State& state) {
  // The runtime channel's per-sample cost: normalize a counter trace
  // (per-event rate + z-score quantization) and fuzzy-hash the resulting
  // byte stream. One 240-interval x 4-event trace, the shape of a
  // four-minute `perf stat -I 1000` collection.
  const runtime::CounterTrace trace =
      runtime::synthesize_trace(runtime::hpc_trace_spec(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::hash_trace(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RuntimeTraceHash);

// Same corpus as feature_bench_data() plus the execution-fingerprint
// channel (per-class synthetic workload traces), so the bench pair
// BM_FeatureRowIndexed / BM_FeatureRowIndexedFourChannel isolates what
// the fourth channel adds to the row fill.
const FeatureBenchData& feature_bench_data_four_channel() {
  static const FeatureBenchData data = [] {
    const FeatureBenchData& base = feature_bench_data();
    std::vector<core::FeatureHashes> train = base.train;
    const int k = base.index().n_classes();
    for (std::size_t i = 0; i < train.size(); ++i) {
      runtime::attach_trace(
          train[i], runtime::synthesize_trace(
                        runtime::hpc_trace_spec(base.labels[i]), 500 + i));
    }
    std::vector<std::string> names;
    for (int c = 0; c < k; ++c) names.push_back("class" + std::to_string(c));
    auto index = std::make_unique<core::TrainIndex>(
        train, base.labels, std::move(names), runtime::runtime_channel_set());
    core::FeatureHashes query = base.query;
    runtime::attach_trace(
        query, runtime::synthesize_trace(runtime::hpc_trace_spec(0), 9999));
    return FeatureBenchData{std::move(train), base.labels, std::move(index),
                            std::move(query)};
  }();
  return data;
}

void BM_FeatureRowIndexedFourChannel(benchmark::State& state) {
  // BM_FeatureRowIndexed with the runtime channel in the index: the row
  // widens from 3k to 4k columns and the probe covers one more channel
  // whose same-class candidates genuinely run the DP.
  const FeatureBenchData& data = feature_bench_data_four_channel();
  std::vector<float> row(data.index().n_channels() *
                         static_cast<std::size_t>(data.index().n_classes()));
  core::RowFillStats stats;
  for (auto _ : state) {
    core::fill_feature_row(data.index(), data.query,
                           ssdeep::EditMetric::kDamerauOsa, -1, row,
                           core::kAllChannels, &stats);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.train.size()) * 4);
  const auto iters = std::max<std::int64_t>(state.iterations(), 1);
  const auto visited = static_cast<double>(stats.candidates_scored + stats.index_skipped);
  state.counters["scored_per_row"] =
      static_cast<double>(stats.candidates_scored) / static_cast<double>(iters);
  state.counters["skip_rate"] =
      visited > 0.0 ? static_cast<double>(stats.index_skipped) / visited : 0.0;
}
BENCHMARK(BM_FeatureRowIndexedFourChannel);

void BM_StreamingUpdateChunks(benchmark::State& state) {
  // Streaming in 4 KiB chunks (the Slurm-prolog collection pattern).
  const auto data = random_bytes(11, 1 << 20);
  for (auto _ : state) {
    ssdeep::FuzzyHasher hasher;
    for (std::size_t off = 0; off < data.size(); off += 4096) {
      hasher.update(std::span<const std::uint8_t>(data).subspan(
          off, std::min<std::size_t>(4096, data.size() - off)));
    }
    benchmark::DoNotOptimize(hasher.digest());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_StreamingUpdateChunks);

}  // namespace
