// google-benchmark microbenchmarks for the SSDeep substrate: hashing
// throughput, digest comparison cost (gated vs DP path), edit distances.
// These quantify the fast-path claims made in DESIGN.md.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ssdeep/compare.hpp"
#include "ssdeep/edit_distance.hpp"
#include "ssdeep/fuzzy_hash.hpp"
#include "util/rng.hpp"

namespace {

using namespace fhc;

std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::size_t n) {
  fhc::util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xff);
  return out;
}

void BM_FuzzyHash(benchmark::State& state) {
  const auto data = random_bytes(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::fuzzy_hash(std::span<const std::uint8_t>(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FuzzyHash)->Range(1 << 10, 1 << 22);

void BM_CompareRelatedDigests(benchmark::State& state) {
  // Related inputs: the DP edit distance actually runs.
  auto a = random_bytes(2, 100000);
  auto b = a;
  for (std::size_t i = 30000; i < 40000; ++i) b[i] ^= 0x5a;
  const auto da = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(a));
  const auto db = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::compare_digests(da, db));
  }
}
BENCHMARK(BM_CompareRelatedDigests);

void BM_CompareUnrelatedDigests(benchmark::State& state) {
  // Unrelated inputs: the common-7-gram gate rejects before the DP — the
  // fast path that dominates cross-class comparisons in the pipeline.
  const auto da = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(random_bytes(3, 100000)));
  const auto db = ssdeep::fuzzy_hash(std::span<const std::uint8_t>(random_bytes(4, 100000)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::compare_digests(da, db));
  }
}
BENCHMARK(BM_CompareUnrelatedDigests);

std::string random_digest_chars(std::uint64_t seed, std::size_t n) {
  static constexpr char kAlpha[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  fhc::util::Rng rng(seed);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(kAlpha[rng.next_below(64)]);
  return out;
}

void BM_DamerauOsa64(benchmark::State& state) {
  const std::string a = random_digest_chars(5, 64);
  const std::string b = random_digest_chars(6, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::damerau_levenshtein_osa(a, b));
  }
}
BENCHMARK(BM_DamerauOsa64);

void BM_WeightedLevenshtein64(benchmark::State& state) {
  const std::string a = random_digest_chars(7, 64);
  const std::string b = random_digest_chars(8, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::weighted_levenshtein(a, b));
  }
}
BENCHMARK(BM_WeightedLevenshtein64);

void BM_HasCommonSubstring(benchmark::State& state) {
  const std::string a = random_digest_chars(9, 64);
  const std::string b = random_digest_chars(10, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssdeep::has_common_substring(a, b));
  }
}
BENCHMARK(BM_HasCommonSubstring);

void BM_StreamingUpdateChunks(benchmark::State& state) {
  // Streaming in 4 KiB chunks (the Slurm-prolog collection pattern).
  const auto data = random_bytes(11, 1 << 20);
  for (auto _ : state) {
    ssdeep::FuzzyHasher hasher;
    for (std::size_t off = 0; off < data.size(); off += 4096) {
      hasher.update(std::span<const std::uint8_t>(data).subspan(
          off, std::min<std::size_t>(4096, data.size() - off)));
    }
    benchmark::DoNotOptimize(hasher.digest());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_StreamingUpdateChunks);

}  // namespace
