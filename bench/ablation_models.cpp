// Model ablation (paper Section 6 names SVM and k-NN as future-work
// comparators; Section 1/2 argue against cryptographic exact matching).
// All learned models consume the same fuzzy-hash similarity features.
//
// Expected shape: RandomForest >= kNN ~ SVM >> SHA-256 exact matching
// (which can only re-identify byte-identical files and therefore labels
// every test sample "unknown" on this duplicate-free corpus).
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/env.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::env_double("FHC_ABLATION_SCALE", 0.25);
  config.seed = fhc::util::bench_seed();
  config.classifier.confidence_threshold = 0.25;

  std::printf("Model ablation (scale %.2f)\n", config.scale);
  std::printf("note: k-NN/SVM thresholds are oracle-tuned on the test split "
              "(favours the baselines)\n\n");

  core::ExperimentData data = core::prepare_experiment(config);
  const auto rows = core::run_model_ablation(
      config, data,
      {core::ModelKind::kRandomForest, core::ModelKind::kKnn,
       core::ModelKind::kLinearSvm, core::ModelKind::kCryptoExact});

  fhc::util::TextTable table(
      {"model", "micro f1", "macro f1", "weighted f1", "threshold"},
      {fhc::util::Align::Left, fhc::util::Align::Right, fhc::util::Align::Right,
       fhc::util::Align::Right, fhc::util::Align::Right});
  for (const auto& row : rows) {
    table.add_row({std::string(core::model_kind_name(row.kind)),
                   fhc::util::fixed(row.micro_f1, 3),
                   fhc::util::fixed(row.macro_f1, 3),
                   fhc::util::fixed(row.weighted_f1, 3),
                   row.kind == core::ModelKind::kCryptoExact
                       ? std::string("n/a")
                       : fhc::util::fixed(row.threshold, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
