// Reproduces paper Table 2: "Hash Similarity Example" — the SSDeep fuzzy
// hash of the symbols channel for two versions of OpenMalaria and their
// similarity score. (Absolute digests differ from the paper's — different
// binaries — but the demonstration is the same: two versions of one
// application share large digest substrings and score high.)
#include <cstdio>

#include "core/report.hpp"
#include "corpus/corpus.hpp"
#include "util/env.hpp"

int main() {
  using namespace fhc;
  std::vector<corpus::AppClassSpec> specs{
      *corpus::find_class(corpus::paper_app_classes(), "OpenMalaria")};
  corpus::Corpus corpus(specs, fhc::util::bench_seed());

  std::printf("Table 2: Hash Similarity Example (OpenMalaria, ssdeep-symbols)\n");
  std::printf("(paper shows versions 46.0-iomkl-2019.01 vs 43.1-foss-2021a)\n\n");

  const auto example = core::make_similarity_example(
      corpus, "OpenMalaria", core::FeatureType::kSymbols,
      ssdeep::EditMetric::kDamerauOsa);
  std::printf("%s\n", core::render_similarity_example(example).c_str());

  // Extra context the paper discusses: the same pair on the other channels.
  for (const auto channel : {core::FeatureType::kStrings, core::FeatureType::kFile}) {
    const auto extra = core::make_similarity_example(
        corpus, "OpenMalaria", channel, ssdeep::EditMetric::kDamerauOsa);
    std::printf("%-14s similarity between the same two versions: %d\n",
                std::string(core::feature_type_name(channel)).c_str(),
                extra.similarity);
  }
  std::printf("\n(expected ordering: symbols >= strings > file — Section 5)\n");
  return 0;
}
