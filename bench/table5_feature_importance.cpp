// Reproduces paper Table 5: "Feature Importance (normalized)" — the Random
// Forest importances aggregated per fuzzy-hash feature type.
//
// Paper: ssdeep-file 0.0718, ssdeep-strings 0.1404, ssdeep-symbols 0.7879.
// Expected shape: symbols >> strings > file.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/env.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::bench_scale();
  config.seed = fhc::util::bench_seed();
  config.tune_threshold = false;  // importances come from the outer fit only

  const core::ExperimentResult result = core::run_experiment(config);

  std::printf("Table 5: Feature Importance (normalized), scale %.2f\n\n", config.scale);
  std::printf("%s\n", core::render_feature_importance(result.importance).c_str());

  std::printf("paper reference:\n");
  std::printf("  ssdeep-file      0.0718\n");
  std::printf("  ssdeep-strings   0.1404\n");
  std::printf("  ssdeep-symbols   0.7879\n\n");

  const bool ordering_holds = result.importance[2] > result.importance[1] &&
                              result.importance[1] > result.importance[0];
  std::printf("symbols > strings > file ordering: %s\n",
              ordering_holds ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
