// Edit-metric ablation: the paper describes the Damerau-Levenshtein
// distance as SSDeep's comparison metric; the historical ssdeep/spamsum
// implementation actually uses a weighted Levenshtein (substitution = 2).
// This bench runs the full pipeline under both to show the end-to-end
// result is robust to the choice — supporting the reproduction's fidelity
// either way (documented in DESIGN.md).
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/env.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::env_double("FHC_ABLATION_SCALE", 0.25);
  config.seed = fhc::util::bench_seed();
  config.tune_threshold = false;
  config.classifier.confidence_threshold = 0.25;

  std::printf("Edit-metric ablation (scale %.2f)\n\n", config.scale);

  core::ExperimentData data = core::prepare_experiment(config);

  fhc::util::TextTable table(
      {"metric", "micro f1", "macro f1", "weighted f1", "imp(file/strings/symbols)"},
      {fhc::util::Align::Left, fhc::util::Align::Right, fhc::util::Align::Right,
       fhc::util::Align::Right, fhc::util::Align::Left});

  struct MetricCase {
    const char* name;
    ssdeep::EditMetric metric;
  };
  const MetricCase cases[] = {
      {"Damerau-Levenshtein (paper Eq. 1)", ssdeep::EditMetric::kDamerauOsa},
      {"weighted Levenshtein (classic ssdeep)",
       ssdeep::EditMetric::kWeightedLevenshtein},
  };
  for (const MetricCase& metric_case : cases) {
    core::ExperimentConfig run_config = config;
    run_config.classifier.metric = metric_case.metric;
    const core::ExperimentResult result = core::run_experiment(run_config, data);
    char imp[64];
    std::snprintf(imp, sizeof(imp), "%.2f / %.2f / %.2f", result.importance[0],
                  result.importance[1], result.importance[2]);
    table.add_row({metric_case.name, fhc::util::fixed(result.report.micro.f1, 3),
                   fhc::util::fixed(result.report.macro.f1, 3),
                   fhc::util::fixed(result.report.weighted.f1, 3), imp});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
