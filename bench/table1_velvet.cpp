// Reproduces paper Table 1: "Versions and Executables for the Velvet
// Application" — the class layout the corpus models (3 versions, each with
// the velveth/velvetg pair).
#include <cstdio>

#include "core/report.hpp"
#include "corpus/corpus.hpp"
#include "util/env.hpp"

int main() {
  using namespace fhc;
  // Velvet at full scale regardless of FHC_SCALE: the table describes the
  // class structure itself.
  std::vector<corpus::AppClassSpec> specs{
      *corpus::find_class(corpus::paper_app_classes(), "Velvet")};
  corpus::Corpus corpus(specs, fhc::util::bench_seed());

  std::printf("Table 1: Versions and Executables for the Velvet Application\n");
  std::printf("(paper: 3 versions x {velveth, velvetg} = 6 samples)\n\n");
  std::printf("%s\n", core::render_class_inventory(corpus, "Velvet").c_str());

  std::printf("Samples enumerated by the corpus:\n");
  for (const auto& ref : corpus.samples()) {
    std::printf("  %s\n", ref.rel_path().c_str());
  }
  return 0;
}
