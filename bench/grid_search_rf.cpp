// Hyperparameter grid search over the Random Forest (paper Section 3:
// n_estimators, criterion, max_depth, min_samples_split, min_samples_leaf,
// max_features tuned "through grid search only within the training set").
// Demonstrates the tuning protocol at reduced scale and reports the
// winning configuration plus its outer-test result.
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::env_double("FHC_ABLATION_SCALE", 0.25);
  config.seed = fhc::util::bench_seed();
  config.tune_threshold = false;

  // Grid around the scikit-learn defaults the paper tuned from. Strong
  // regularizers (shallow depth, large leaves) are deliberately absent:
  // the nested split is much smaller than the outer training set, so they
  // win inner validation yet lose on the outer test set (classic nested-
  // tuning pitfall at reduced scale).
  core::RfGrid grid;
  grid.n_estimators = {100, 200};
  grid.criteria = {ml::Criterion::kGini, ml::Criterion::kEntropy};
  grid.min_samples_splits = {2, 4};

  std::printf("Random-forest hyperparameter grid search (scale %.2f, %zu combos,"
              " inner split only)\n\n",
              config.scale, grid.combination_count());

  core::ExperimentData data = core::prepare_experiment(config);
  fhc::util::Stopwatch timer;
  const core::GridSearchResult tuned =
      core::grid_search_hyperparameters(config, data, grid);

  std::printf("evaluated %zu combinations in %.1fs\n", tuned.combinations_evaluated,
              timer.seconds());
  std::printf("best: n_estimators=%d criterion=%s max_depth=%d min_leaf=%d "
              "threshold=%.2f (inner combined f1 %.3f)\n\n",
              tuned.best_params.n_estimators,
              tuned.best_params.tree.criterion == ml::Criterion::kGini ? "gini"
                                                                       : "entropy",
              tuned.best_params.tree.max_depth,
              tuned.best_params.tree.min_samples_leaf, tuned.best_threshold,
              tuned.best_score / 3.0);

  // Apply the winner to the untouched outer test set.
  config.classifier.forest = tuned.best_params;
  config.classifier.confidence_threshold = tuned.best_threshold;
  const core::ExperimentResult result = core::run_experiment(config, data);
  std::printf("outer test set with tuned parameters: micro %.3f, macro %.3f, "
              "weighted %.3f\n",
              result.report.micro.f1, result.report.macro.f1,
              result.report.weighted.f1);
  return 0;
}
