// Ablation (ours; motivated by paper Table 5 and Section 6): which fuzzy
// hash channels carry the signal? Runs the full pipeline with every
// channel subset enabled.
//
// Expected shape: symbols-only ~ all three > strings-only >> file-only;
// stripped binaries (no symbols channel) are the paper's known failure
// mode, visible here as the file+strings row.
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/env.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::env_double("FHC_ABLATION_SCALE", 0.25);
  config.seed = fhc::util::bench_seed();
  config.tune_threshold = false;
  config.classifier.confidence_threshold = 0.25;

  std::printf("Feature-channel ablation (scale %.2f, fixed threshold %.2f)\n\n",
              config.scale, config.classifier.confidence_threshold);

  core::ExperimentData data = core::prepare_experiment(config);

  struct Combo {
    const char* name;
    core::ChannelMask mask;
  };
  const Combo combos[] = {
      {"file only", {true, false, false}},
      {"strings only", {false, true, false}},
      {"symbols only", {false, false, true}},
      {"file+strings (stripped-binary case)", {true, true, false}},
      {"file+symbols", {true, false, true}},
      {"strings+symbols", {false, true, true}},
      {"all three (paper)", {true, true, true}},
  };

  fhc::util::TextTable table({"channels", "micro f1", "macro f1", "weighted f1"},
                             {fhc::util::Align::Left, fhc::util::Align::Right,
                              fhc::util::Align::Right, fhc::util::Align::Right});
  for (const Combo& combo : combos) {
    core::ExperimentConfig run_config = config;
    run_config.classifier.channels = combo.mask;
    const core::ExperimentResult result = core::run_experiment(run_config, data);
    table.add_row({combo.name, fhc::util::fixed(result.report.micro.f1, 3),
                   fhc::util::fixed(result.report.macro.f1, 3),
                   fhc::util::fixed(result.report.weighted.f1, 3)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
