// Reproduces paper Figure 3: "The f1-Score over confidence threshold of
// the grid search within the training set to handle unknown classes."
//
// The sweep runs on the inner validation split (training data only, with
// pseudo-unknown classes), exactly as the paper tunes its threshold.
// Expected shape: micro/weighted f1 stay high as the threshold grows while
// macro f1 falls — the reason the paper reports macro f1.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/env.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::bench_scale();
  config.seed = fhc::util::bench_seed();
  config.tune_threshold = true;

  const core::ExperimentResult result = core::run_experiment(config);

  std::printf("Figure 3: f1-score vs confidence threshold "
              "(inner grid search, training set only), scale %.2f\n\n",
              config.scale);
  std::printf("%s\n",
              core::render_threshold_curve(result.threshold_curve,
                                           result.chosen_threshold)
                  .c_str());

  // Shape check the paper describes in Section 5.
  const auto& curve = result.threshold_curve;
  if (curve.size() >= 3) {
    const auto& mid = curve[curve.size() / 2];
    const auto& last = curve.back();
    std::printf("macro f1 falls with aggressive thresholds: %.3f -> %.3f (%s)\n",
                mid.macro_f1, last.macro_f1,
                mid.macro_f1 > last.macro_f1 ? "REPRODUCED" : "not reproduced");
  }
  std::printf("chosen threshold (max combined micro+macro+weighted): %.2f\n",
              result.chosen_threshold);
  std::printf("outer test-set result at that threshold: micro %.2f, macro %.2f, "
              "weighted %.2f\n",
              result.report.micro.f1, result.report.macro.f1,
              result.report.weighted.f1);
  return 0;
}
