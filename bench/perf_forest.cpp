// google-benchmark microbenchmarks for the ML substrate at the shapes the
// pipeline actually uses (n ~ thousands, d = 3 * 73 = 219, K = 73).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "ml/class_weight.hpp"
#include "ml/flat_forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear_svm.hpp"
#include "ml/random_forest.hpp"
#include "support/synthetic_hashes.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fhc;

struct Synthetic {
  ml::Matrix x;
  std::vector<int> y;
  int classes;
};

/// Pipeline-shaped data: per class, the own-class column block is high and
/// the rest low — mimics the similarity feature matrix.
Synthetic make_data(std::size_t n, int classes, std::size_t features) {
  fhc::util::Rng rng(42);
  Synthetic data{ml::Matrix(n, features), std::vector<int>(n), classes};
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(classes)));
    data.y[i] = cls;
    for (std::size_t f = 0; f < features; ++f) {
      const bool own = f % static_cast<std::size_t>(classes) ==
                       static_cast<std::size_t>(cls);
      const double base = own ? 70.0 : 8.0;
      data.x.at(i, f) = static_cast<float>(base + rng.gaussian() * 6.0);
    }
  }
  return data;
}

void BM_ForestFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Synthetic data = make_data(n, 73, 219);
  const auto weights = ml::balanced_sample_weights(data.y);
  ml::ForestParams params;
  params.n_estimators = 50;
  for (auto _ : state) {
    ml::RandomForest forest;
    forest.fit(data.x, data.y, data.classes, weights, params);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestFit)->Arg(512)->Arg(1024)->Arg(2688)->Unit(benchmark::kMillisecond);

/// Train-time pair for BM_ForestFit: the serial reference path (1-thread
/// pool) at the middle shape. Trees are independent and each derives its
/// RNG stream from (forest seed, tree index), so this trains the
/// bit-identical ensemble — the ratio to BM_ForestFit/1024 is the pool
/// speedup on this host.
void BM_ForestFitSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Synthetic data = make_data(n, 73, 219);
  const auto weights = ml::balanced_sample_weights(data.y);
  ml::ForestParams params;
  params.n_estimators = 50;
  fhc::util::ThreadPool serial_pool(1);
  for (auto _ : state) {
    ml::RandomForest forest;
    forest.fit(data.x, data.y, data.classes, weights, params, &serial_pool);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestFitSerial)->Arg(1024)->Unit(benchmark::kMillisecond);

/// Shared fitted forest for the predict/load benches — pipeline shape
/// (73 classes, 219 features), 50 trees over 1024 rows.
const ml::RandomForest& predict_forest() {
  static const ml::RandomForest forest = [] {
    const Synthetic data = make_data(1024, 73, 219);
    ml::RandomForest f;
    ml::ForestParams params;
    params.n_estimators = 50;
    f.fit(data.x, data.y, data.classes, {}, params);
    return f;
  }();
  return forest;
}

void BM_ForestPredictProba(benchmark::State& state) {
  const Synthetic data = make_data(1024, 73, 219);
  const ml::RandomForest& forest = predict_forest();
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_proba(data.x.row(row)));
    row = (row + 1) % data.x.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredictProba);

/// The FlatForest block walk at batch sizes 1/8/64 — compare
/// items_per_second against the per-row BM_ForestPredictProba baseline.
/// Tree-major blocking keeps each tree's nodes hot in L1/L2 across the
/// whole block instead of re-missing the ensemble per row.
void BM_ForestPredictBlock(benchmark::State& state) {
  const Synthetic data = make_data(1024, 73, 219);
  const ml::RandomForest& forest = predict_forest();
  const auto block = static_cast<std::size_t>(state.range(0));
  ml::Matrix out(data.x.rows(), 73);
  std::size_t row = 0;
  for (auto _ : state) {
    forest.plan().predict_proba_block(data.x, row, row + block, out);
    benchmark::DoNotOptimize(out.row(row).data());
    row = (row + block) % data.x.rows();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(block));
}
BENCHMARK(BM_ForestPredictBlock)->Arg(1)->Arg(8)->Arg(64);

/// Leaf-accumulate pair: the 73-double `+=` per (tree, row) that bounds
/// the block walk once the descent overlaps its cache misses. The
/// baseline is the pre-restructure scalar loop (no __restrict, no
/// unroll); BM_LeafAccumulate runs the production primitive
/// (FlatForest::accumulate_leaf). Both walk a leaf-pool-sized ring so
/// the float rows stream from memory the way real leaf rows do.
constexpr std::size_t kAccClasses = 73;
constexpr std::size_t kAccLeafRows = 4096;

const std::vector<float>& leaf_pool_fixture() {
  static const std::vector<float> pool = [] {
    fhc::util::Rng rng(99);
    std::vector<float> p(kAccClasses * kAccLeafRows);
    for (auto& v : p) v = static_cast<float>(rng.gaussian());
    return p;
  }();
  return pool;
}

void BM_LeafAccumulateScalar(benchmark::State& state) {
  const std::vector<float>& pool = leaf_pool_fixture();
  std::vector<double> acc(kAccClasses, 0.0);
  for (auto _ : state) {
    for (std::size_t r = 0; r < kAccLeafRows; ++r) {
      const float* leaf = pool.data() + r * kAccClasses;
      double* out = acc.data();
      for (std::size_t c = 0; c < kAccClasses; ++c) out[c] += leaf[c];
    }
    benchmark::DoNotOptimize(acc.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kAccLeafRows));
}
BENCHMARK(BM_LeafAccumulateScalar);

void BM_LeafAccumulate(benchmark::State& state) {
  const std::vector<float>& pool = leaf_pool_fixture();
  std::vector<double> acc(kAccClasses, 0.0);
  for (auto _ : state) {
    for (std::size_t r = 0; r < kAccLeafRows; ++r) {
      ml::FlatForest::accumulate_leaf(
          acc, std::span<const float>(pool.data() + r * kAccClasses, kAccClasses));
    }
    benchmark::DoNotOptimize(acc.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kAccLeafRows));
}
BENCHMARK(BM_LeafAccumulate);

/// Model (re)load pair: the text parser vs the binary SoA image — the
/// RELOAD path cost a resident fhc_serve pays per model swap. The binary
/// loader copies no node data (the plan attaches to the image) and
/// parses no floats.
void BM_ModelLoadText(benchmark::State& state) {
  std::ostringstream text;
  predict_forest().save(text);
  const std::string image = text.str();
  for (auto _ : state) {
    ml::RandomForest loaded;
    std::istringstream in(image);
    loaded.load(in);
    benchmark::DoNotOptimize(loaded.tree_count());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_ModelLoadText)->Unit(benchmark::kMillisecond);

void BM_ModelLoadBinary(benchmark::State& state) {
  std::ostringstream binary(std::ios::binary);
  predict_forest().save_binary(binary);
  const std::string image = binary.str();
  for (auto _ : state) {
    ml::RandomForest loaded;
    std::istringstream in(image, std::ios::binary);
    loaded.load_binary(in);
    benchmark::DoNotOptimize(loaded.tree_count());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_ModelLoadBinary)->Unit(benchmark::kMillisecond);

/// Whole-model reload pair at the paper's class count (K = 73): the v1
/// blob — which re-prepares every reference digest and rebuilds the
/// per-channel CSR gram indexes on load — against the v2 sectioned
/// container, which checksums the mapped bytes and attaches the pools in
/// place. per_class (the Arg) scales the reference corpus; the v1 cost
/// grows with it while attach stays O(bytes) — the flatness across
/// /12 vs /48 is the point of the pair.
const core::FuzzyHashClassifier& bench_classifier(int per_class) {
  static std::map<int, core::FuzzyHashClassifier> cache;
  auto it = cache.find(per_class);
  if (it == cache.end()) {
    testsupport::SyntheticHashesParams params;
    params.classes = 73;
    params.per_class = per_class;
    params.queries = 0;
    const testsupport::SyntheticHashes data =
        testsupport::make_synthetic_hashes(params);
    std::vector<std::string> names;
    for (int c = 0; c < params.classes; ++c) {
      std::string name = std::to_string(c);
      name.insert(name.begin(), 'C');
      names.push_back(std::move(name));
    }
    core::ClassifierConfig config;
    config.forest.n_estimators = 8;  // the pair measures index load, not forest
    core::FuzzyHashClassifier clf;
    clf.fit(data.train, data.labels, std::move(names), config);
    it = cache.emplace(per_class, std::move(clf)).first;
  }
  return it->second;
}

std::vector<std::byte> model_image(int per_class, bool v2) {
  std::ostringstream out(std::ios::binary);
  if (v2) {
    bench_classifier(per_class).save_binary(out);
  } else {
    bench_classifier(per_class).save_binary_v1(out);
  }
  const std::string image = out.str();
  std::vector<std::byte> bytes(image.size());
  std::memcpy(bytes.data(), image.data(), image.size());
  return bytes;
}

void BM_ModelLoadBinaryV1(benchmark::State& state) {
  const std::vector<std::byte> image =
      model_image(static_cast<int>(state.range(0)), /*v2=*/false);
  for (auto _ : state) {
    core::FuzzyHashClassifier loaded;
    loaded.load_binary({image.data(), image.size()}, nullptr);
    benchmark::DoNotOptimize(loaded.row_width());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_ModelLoadBinaryV1)->Arg(12)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_ModelAttachV2(benchmark::State& state) {
  const std::vector<std::byte> image =
      model_image(static_cast<int>(state.range(0)), /*v2=*/true);
  for (auto _ : state) {
    core::FuzzyHashClassifier loaded;
    loaded.load_binary({image.data(), image.size()}, nullptr);
    benchmark::DoNotOptimize(loaded.row_width());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_ModelAttachV2)->Arg(12)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_KnnPredict(benchmark::State& state) {
  const Synthetic data = make_data(2688, 73, 219);
  ml::KnnClassifier knn;
  knn.fit(data.x, data.y, data.classes, ml::KnnParams{});
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.predict_proba(data.x.row(row)));
    row = (row + 1) % data.x.rows();
  }
}
BENCHMARK(BM_KnnPredict)->Unit(benchmark::kMicrosecond);

void BM_SvmFit(benchmark::State& state) {
  const Synthetic data = make_data(1024, 16, 219);
  const auto weights = ml::balanced_sample_weights(data.y);
  ml::SvmParams params;
  params.epochs = 5;
  for (auto _ : state) {
    ml::LinearSvm svm;
    svm.fit(data.x, data.y, data.classes, weights, params);
    benchmark::DoNotOptimize(svm.n_classes());
  }
}
BENCHMARK(BM_SvmFit)->Unit(benchmark::kMillisecond);

}  // namespace
