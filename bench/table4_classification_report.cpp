// Reproduces paper Table 4: the full per-class classification report of
// the Fuzzy Hash Classifier, with micro/macro/weighted averages.
//
// Paper headline (full scale): micro f1 0.89, macro f1 0.90, weighted
// f1 0.90; unknown class ("-1"): P 0.92 / R 0.75 / f1 0.83 on 852 samples.
// Expect the same shape here (exact per-class numbers differ — synthetic
// corpus), including the unknown class's precision > recall.
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace fhc;
  core::ExperimentConfig config;
  config.scale = fhc::util::bench_scale();
  config.seed = fhc::util::bench_seed();

  std::printf("Table 4: Classification Report (scale %.2f, seed %llu)\n\n",
              config.scale,
              static_cast<unsigned long long>(config.seed));

  fhc::util::Stopwatch total;
  const core::ExperimentResult result = core::run_experiment(config);

  std::printf("%s\n", result.report.to_string().c_str());
  std::printf("accuracy: %.4f   chosen confidence threshold: %.2f\n\n",
              result.report.accuracy, result.chosen_threshold);

  std::printf("Comparison with the paper (shape, not absolute numbers):\n");
  std::printf("  %-12s %-10s %-10s\n", "metric", "paper", "measured");
  std::printf("  %-12s %-10s %-10.2f\n", "micro f1", "0.89", result.report.micro.f1);
  std::printf("  %-12s %-10s %-10.2f\n", "macro f1", "0.90", result.report.macro.f1);
  std::printf("  %-12s %-10s %-10.2f\n", "weighted f1", "0.90",
              result.report.weighted.f1);
  for (const auto& m : result.report.per_class) {
    if (m.label == fhc::ml::kUnknownLabel) {
      std::printf("  %-12s %-10s P=%.2f R=%.2f f1=%.2f support=%zu\n",
                  "unknown(-1)", "P.92/R.75", m.precision, m.recall, m.f1,
                  m.support);
    }
  }

  std::printf("\npipeline timings: extract %.1fs, tune %.1fs, fit %.1fs, "
              "predict %.1fs, total %.1fs\n",
              result.seconds_extract, result.seconds_tune, result.seconds_fit,
              result.seconds_predict, total.seconds());
  return 0;
}
